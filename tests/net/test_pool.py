"""Pool-hygiene regression suite.

The free-list pools (repro.net.pool) recycle Packets and
PipelineContexts through the datapath; a single missed reset or a
release at a site where the object is still referenced silently
corrupts later traffic.  The debug pool wrappers fail fast on exactly
those bugs, and this suite (a) proves the wrappers catch each violation
class, (b) runs the fig8 broadcast experiment end-to-end under them,
and (c) proves recycling actually happens on observer-free runs — a
pool that never reuses would pass every hygiene check while delivering
none of the speedup.
"""

from __future__ import annotations

import pytest

from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.net.packet import Packet, PacketType, RdmaOp
from repro.net.pipeline import ObserverBus, PipelineContext
from repro.net.pool import (ContextPool, DebugContextPool, DebugPacketPool,
                            PacketPool, PoolError, SimPools)

KB = 1 << 10


# ---------------------------------------------------------------------------
# unit level: each violation class trips the debug wrappers
# ---------------------------------------------------------------------------

class TestDebugPacketPool:
    def _pool(self) -> DebugPacketPool:
        return DebugPacketPool(ObserverBus())

    def test_double_release_fails(self):
        pool = self._pool()
        pkt = pool.acquire(PacketType.DATA, 1, 2)
        pool.release(pkt)
        with pytest.raises(PoolError, match="released twice"):
            pool.release(pkt)

    def test_stale_sr_surviving_release_fails_on_reuse(self):
        """A release that skipped the sr scrub must be caught at the
        next acquire, not silently leak a stale routing header."""
        pool = self._pool()
        pkt = pool.acquire(PacketType.DATA, 1, 2)
        pkt.sr = object()
        # Emulate a buggy release site that forgot the scrub.
        pool._out.discard(id(pkt))
        pool._free.append(pkt)
        pool._free_ids.add(id(pkt))
        with pytest.raises(PoolError, match="stale packet"):
            pool.acquire(PacketType.ACK, 2, 1)

    def test_stale_payload_surviving_release_fails_on_reuse(self):
        pool = self._pool()
        pkt = pool.acquire(PacketType.DATA, 1, 2, payload=512)
        pool._out.discard(id(pkt))
        pool._free.append(pkt)  # bypasses the scrub: payload still 512
        pool._free_ids.add(id(pkt))
        with pytest.raises(PoolError, match="stale packet"):
            pool.clone(Packet(PacketType.DATA, 3, 4))

    def test_correct_release_scrubs_and_recycles(self):
        pool = self._pool()
        class FakeSr:  # wire_size is computed at init: sr needs its size
            header_bytes = 8

        pkt = pool.acquire(PacketType.DATA, 1, 2,
                           payload=256, meta=("x",), sr=FakeSr())
        pool.release(pkt)
        again = pool.acquire(PacketType.ACK, 2, 1)
        assert again is pkt  # recycled...
        assert again.payload == 0 and again.meta is None and again.sr is None
        assert pool.reused == 1

    def test_release_suppressed_while_bus_has_subscribers(self):
        bus = ObserverBus()
        pool = DebugPacketPool(bus)
        bus.subscribe("deliver", lambda *a: None)
        pkt = pool.acquire(PacketType.DATA, 1, 2)
        pool.release(pkt)
        assert pool.suppressed == 1
        assert pool.acquire(PacketType.DATA, 1, 2) is not pkt
        # Releasing the retained packet again is legal: the gated
        # release never free-listed it, so this is not a double free.
        pool.release(pkt)

    def test_acquire_data_matches_kwargs_construction(self):
        """The positional DATA fast path must be field-for-field
        identical to Packet(...) — including the eager wire-size memo."""
        pool = self._pool()
        fast = pool.acquire_data(1, 2, 3, 4, 7, 256, RdmaOp.WRITE, 9,
                                 True, False, 100, 11, 0.5, True, ("m",))
        slow = Packet(PacketType.DATA, 1, 2, src_qp=3, dst_qp=4, psn=7,
                      payload=256, op=RdmaOp.WRITE, msg_id=9, first=True,
                      last=False, vaddr=100, rkey=11, created_at=0.5,
                      retransmit=True, meta=("m",))
        assert slow.pid == fast.pid + 1  # both draw from the global pid stream
        for name in Packet.__slots__:
            if name != "pid":
                assert getattr(fast, name) == getattr(slow, name), name

    def test_acquire_fb_matches_kwargs_construction(self):
        pool = self._pool()
        for ptype in (PacketType.ACK, PacketType.NACK, PacketType.CNP):
            fast = pool.acquire_fb(ptype, 1, 2, 3, 4, 7, 0.5)
            slow = Packet(ptype, 1, 2, src_qp=3, dst_qp=4, psn=7,
                          created_at=0.5)
            for name in Packet.__slots__:
                if name != "pid":
                    assert getattr(fast, name) == getattr(slow, name), name

    def test_fast_paths_recycle_and_stay_hygiene_checked(self):
        pool = self._pool()
        pkt = pool.acquire_data(1, 2, 3, 4, 7, 256, RdmaOp.SEND, 9,
                                False, False, 0, 0, 0.0, False, None)
        pool.release(pkt)
        again = pool.acquire_fb(PacketType.ACK, 2, 1, 4, 3, 6, 1.0)
        assert again is pkt and pool.reused == 1
        pool.release(again)
        again.payload = 64  # corrupt the free-listed packet
        with pytest.raises(PoolError, match="stale packet"):
            pool.acquire_data(1, 2, 3, 4, 8, 128, RdmaOp.SEND, 9,
                              False, False, 0, 0, 0.0, False, None)

    def test_pid_sequence_matches_unpooled_allocation(self):
        """Recycled acquires re-run __init__ and draw the next pid —
        event-for-event identical to fresh allocation."""
        pool = self._pool()
        a = pool.acquire(PacketType.DATA, 1, 2)
        first_pid = a.pid
        pool.release(a)
        b = pool.acquire(PacketType.DATA, 1, 2)  # same object, re-inited
        fresh = Packet(PacketType.DATA, 1, 2)
        assert b is a
        assert b.pid == first_pid + 1
        assert fresh.pid == b.pid + 1


class TestDebugContextPool:
    def test_double_release_fails(self):
        pool = DebugContextPool()
        ctx = pool.acquire(Packet(PacketType.DATA, 1, 2), 0)
        pool.release(ctx)
        with pytest.raises(PoolError, match="released twice"):
            pool.release(ctx)

    def test_unreset_context_on_free_list_fails(self):
        pool = DebugContextPool()
        ctx = pool.acquire(Packet(PacketType.DATA, 1, 2), 0)
        ctx.mft = object()
        pool._out.discard(id(ctx))
        pool._free.append(ctx)  # bypasses the reset
        pool._free_ids.add(id(ctx))
        with pytest.raises(PoolError, match="stale context"):
            pool.acquire(Packet(PacketType.DATA, 3, 4), 1)

    def test_release_resets_every_field(self):
        pool = ContextPool()
        ctx = pool.acquire(Packet(PacketType.DATA, 1, 2), 3,
                           switch=object(), accel=object())
        ctx.mft = object()
        ctx.targets = [1]
        ctx.replicas = [2]
        ctx.stage_index = 5
        pool.release(ctx)
        assert (ctx.pkt is None and ctx.switch is None and ctx.accel is None
                and ctx.mft is None and ctx.targets is None
                and ctx.replicas is None and ctx.stage_index == 0
                and ctx.in_port == -1)
        assert pool.acquire(Packet(PacketType.DATA, 1, 2), 0) is ctx


# ---------------------------------------------------------------------------
# integration: real traffic under the debug pools
# ---------------------------------------------------------------------------

class TestDatapathHygiene:
    def _debug_cluster(self, monkeypatch) -> Cluster:
        monkeypatch.setenv("CEPHEUS_POOL_DEBUG", "1")
        cl = Cluster.testbed(4)
        assert isinstance(cl.sim.pools.pkt, DebugPacketPool)
        return cl

    def test_broadcasts_run_clean_under_debug_pools(self, monkeypatch):
        """Multicast broadcasts across the whole size range: any double
        handout / double free / missed scrub raises PoolError."""
        cl = self._debug_cluster(monkeypatch)
        algo = CepheusBcast(cl, cl.host_ips)
        for size in (64, 4 * KB, 64 * KB):
            algo.run(size)

    def test_recycling_actually_happens(self, monkeypatch):
        """On an observer-free run both pools must show real reuse."""
        cl = self._debug_cluster(monkeypatch)
        algo = CepheusBcast(cl, cl.host_ips)
        algo.run(64 * KB)
        pools = cl.sim.pools
        assert pools.pkt.reused > 0, "packet pool never recycled"
        assert pools.ctx.reused > 0, "context pool never recycled"
        assert pools.pkt.suppressed == 0  # nobody subscribed, no gating

    def test_fig8_quick_under_debug_pools_matches_plain_run(self, monkeypatch):
        """The fig8 experiment end-to-end: hygiene-clean under the debug
        wrappers AND numerically identical to the plain-pool run (the
        wrappers must observe, never perturb)."""
        from repro.harness.experiments import fig8_bcast_small

        plain = fig8_bcast_small(quick=True)
        monkeypatch.setenv("CEPHEUS_POOL_DEBUG", "1")
        debug = fig8_bcast_small(quick=True)
        assert debug.rows == plain.rows

    def test_simpools_explicit_debug_flag(self):
        pools = SimPools(ObserverBus(), debug=True)
        assert isinstance(pools.pkt, DebugPacketPool)
        assert isinstance(pools.ctx, DebugContextPool)
        assert SimPools(ObserverBus()).debug is False
