"""FailureInjector edge cases: scheduled failures racing with repairs,
double-fails, and severing a switch in the middle of a live MDT."""

import pytest

from repro import constants
from repro.apps import Cluster
from repro.check import InvariantMonitor
from repro.collectives import CepheusBcast
from repro.errors import TopologyError
from repro.net import Simulator, star
from repro.net.failures import FailureInjector
from repro.transport.roce import RoceConfig


def test_double_fail_same_link_is_idempotent(sim):
    topo = star(sim, 2)
    inj = FailureInjector(topo)
    sw = topo.switches[0]
    inj.fail_link(sw, 0)
    inj.fail_link(sw, 0)  # yanking a yanked cable: no-op, no error
    assert inj.active_failures == 1
    inj.repair_link(sw, 0)
    assert inj.active_failures == 0
    assert sw.ports[0].connected


def test_double_fail_from_peer_side_is_idempotent(sim):
    """The second fail may name the *other* end of the same cable."""
    topo = star(sim, 2)
    inj = FailureInjector(topo)
    sw = topo.switches[0]
    nic = topo.nic(1)
    inj.fail_link(sw, 0)
    inj.fail_link(nic, 0)  # same physical link, peer end
    assert inj.active_failures == 1
    inj.repair_link(sw, 0)
    assert sw.ports[0].connected
    assert nic.ports[0].connected


def test_scheduled_failure_firing_after_repair(sim):
    """A `fail_link(at=...)` armed before an explicit fail/repair cycle
    must re-cut the link when it fires — and stay repairable."""
    topo = star(sim, 2)
    inj = FailureInjector(topo)
    sw = topo.switches[0]
    inj.fail_link(sw, 0, at=10e-6)
    inj.fail_link(sw, 0)        # explicit cut now
    inj.repair_link(sw, 0)      # repaired before the timer fires
    sim.run(until=20e-6)
    assert not sw.ports[0].connected   # the scheduled cut landed
    assert inj.active_failures == 1
    inj.repair_link(sw, 0)
    assert sw.ports[0].connected


def test_scheduled_failure_firing_while_still_cut(sim):
    """A scheduled failure that fires while the link is already down
    must not corrupt the severed bookkeeping (no double-entry)."""
    topo = star(sim, 2)
    inj = FailureInjector(topo)
    sw = topo.switches[0]
    inj.fail_link(sw, 0)
    inj.fail_link(sw, 0, at=10e-6)
    sim.run(until=20e-6)
    assert inj.active_failures == 1
    inj.repair_link(sw, 0)
    assert sw.ports[0].connected
    # a second repair of the same link is an error, not a silent no-op
    with pytest.raises(TopologyError):
        inj.repair_link(sw, 0)


def test_repair_unfailed_link_raises(sim):
    topo = star(sim, 2)
    inj = FailureInjector(topo)
    with pytest.raises(TopologyError):
        inj.repair_link(topo.switches[0], 0)


def test_fail_switch_mid_mdt_feedback_path_severed():
    """Black-hole a fat-tree aggregation switch on the live MDT mid-
    transfer: the feedback path is severed, the sender stalls on RTO,
    and after repair the transfer completes exactly once with every
    protocol invariant intact."""
    cl = Cluster.fat_tree_cluster(4, roce_config=RoceConfig(rto=200e-6))
    monitor = InvariantMonitor()
    monitor.attach_cluster(cl)
    try:
        # members span two pods so the MDT traverses agg/core switches
        members = [1, 2, 5, 6]
        algo = CepheusBcast(cl, members)
        algo.prepare()
        mdt = {a.switch.name for a in cl.fabric.mdt_switches(algo.group.mcst_id)}
        victim = next(sw for sw in cl.topo.switches
                      if sw.name in mdt and sw.layer in ("agg", "core"))
        inj = FailureInjector(cl.topo)
        sim = cl.sim
        start = sim.now
        inj.fail_switch(victim, at=start + 2e-6)
        sim.schedule(50e-6, inj.repair_switch, victim)

        counts = {ip: 0 for ip in members[1:]}
        for ip in counts:
            algo.qps[ip].on_message = (
                lambda mid, sz, now, meta, _ip=ip: counts.__setitem__(
                    _ip, counts[_ip] + 1))
        done = {}
        algo.qps[members[0]].post_send(
            8 * constants.MTU_BYTES,
            on_complete=lambda m, t: done.setdefault("t", t))
        sim.run(until=start + 5e-3)
        assert done, "sender never saw the aggregated final ACK"
        assert all(c == 1 for c in counts.values()), counts
        monitor.check_mft_consistency(cl.fabric, expect_connected=True,
                                      injector=inj)
        monitor.assert_clean()
    finally:
        monitor.detach()


def test_double_fail_switch_is_idempotent(sim):
    topo = star(sim, 3)
    inj = FailureInjector(topo)
    sw = topo.switches[0]
    inj.fail_switch(sw)
    inj.fail_switch(sw)
    assert inj.active_failures == 1
    inj.repair_switch(sw)
    with pytest.raises(TopologyError):
        inj.repair_switch(sw)
