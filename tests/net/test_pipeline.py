"""ObserverBus + Pipeline unit tests.

The bus is the single cross-cutting observation mechanism of the
datapath, so its contract is pinned here: registration is idempotent
and symmetric, observers fire in subscription order, one observer's
exception never starves the others (unless it opted into propagation),
and — most importantly for the packet-level benches — an idle bus costs
the datapath a single truthiness branch.
"""

import time

import pytest

from repro.net.pipeline import DEFER, STOP, ObserverBus, Pipeline, PipelineContext
from repro.net.simulator import Simulator


# ---------------------------------------------------------------------------
# registration / unregistration
# ---------------------------------------------------------------------------

class TestSubscription:
    def test_subscribe_and_publish(self):
        bus = ObserverBus()
        got = []
        bus.subscribe("drop", lambda *a: got.append(a))
        bus.publish("drop", "sw0", "pkt", 3, "tail-drop")
        assert got == [("sw0", "pkt", 3, "tail-drop")]

    def test_subscribe_is_idempotent(self):
        bus = ObserverBus()
        hits = []

        def obs(*a):
            hits.append(a)

        bus.subscribe("deliver", obs)
        bus.subscribe("deliver", obs)  # overlapping attachment walks
        bus.publish("deliver", "qp", "pkt")
        assert len(hits) == 1
        assert bus.subscriber_count() == 1

    def test_unsubscribe_removes_and_tolerates_unknown(self):
        bus = ObserverBus()
        obs = lambda *a: None
        bus.subscribe("emit", obs)
        assert bus.is_subscribed("emit", obs)
        bus.unsubscribe("emit", obs)
        assert not bus.is_subscribed("emit", obs)
        bus.unsubscribe("emit", obs)  # second removal: no-op, no error
        assert bus.subscriber_count() == 0

    def test_unknown_channel_rejected(self):
        bus = ObserverBus()
        with pytest.raises(ValueError, match="unknown bus channel"):
            bus.subscribe("no-such-channel", lambda: None)
        with pytest.raises(ValueError):
            bus.publish("no-such-channel")

    def test_bound_methods_dedupe_per_instance(self):
        """Bound methods of one object compare equal across accesses —
        the dedupe the cluster-level attachment walks rely on."""

        class Tap:
            def on_emit(self, *a):
                pass

        bus = ObserverBus()
        tap = Tap()
        bus.subscribe("emit", tap.on_emit)
        bus.subscribe("emit", tap.on_emit)  # fresh bound-method object
        assert bus.subscriber_count() == 1
        bus.unsubscribe("emit", tap.on_emit)
        assert bus.subscriber_count() == 0

    def test_clear_drops_everything(self):
        bus = ObserverBus()
        for ch in ObserverBus.CHANNELS:
            bus.subscribe(ch, lambda *a: None)
        assert bus.subscriber_count() == len(ObserverBus.CHANNELS)
        bus.clear()
        assert bus.subscriber_count() == 0


# ---------------------------------------------------------------------------
# ordering
# ---------------------------------------------------------------------------

class TestOrdering:
    def test_observers_fire_in_subscription_order(self):
        bus = ObserverBus()
        order = []
        for i in range(5):
            bus.subscribe("classify", lambda *a, _i=i: order.append(_i))
        bus.publish("classify")
        assert order == [0, 1, 2, 3, 4]

    def test_unsubscribe_preserves_relative_order(self):
        bus = ObserverBus()
        order = []
        subs = [bus.subscribe("classify", lambda *a, _i=i: order.append(_i))
                for i in range(4)]
        bus.unsubscribe("classify", subs[1])
        bus.publish("classify")
        assert order == [0, 2, 3]

    def test_publication_iterates_a_stable_snapshot(self):
        """An observer that (un)subscribes mid-publication must not
        perturb the in-flight fan-out."""
        bus = ObserverBus()
        order = []

        def late(*a):
            order.append("late")

        def first(*a):
            order.append("first")
            bus.subscribe("classify", late)      # must not fire this round
            bus.unsubscribe("classify", second)  # must still fire this round

        def second(*a):
            order.append("second")

        bus.subscribe("classify", first)
        bus.subscribe("classify", second)
        bus.publish("classify")
        assert order == ["first", "second"]
        # round 2: `second` is gone, `late` (added mid-round-1) now fires
        bus.publish("classify")
        assert order == ["first", "second", "first", "late"]


# ---------------------------------------------------------------------------
# exception isolation
# ---------------------------------------------------------------------------

class TestIsolation:
    def test_observer_exception_is_isolated_and_recorded(self):
        bus = ObserverBus()
        got = []

        def broken(*a):
            raise RuntimeError("observer bug")

        bus.subscribe("feedback", broken)
        bus.subscribe("feedback", lambda *a: got.append(a))
        bus.publish("feedback", "engine")  # must not raise
        assert got == [("engine",)]
        assert len(bus.errors) == 1
        assert bus.errors[0]["channel"] == "feedback"
        assert "RuntimeError: observer bug" in bus.errors[0]["error"]

    def test_propagate_observer_raises_through(self):
        bus = ObserverBus()

        def strict(*a):
            raise RuntimeError("strict violation")

        bus.subscribe("feedback", strict, propagate=True)
        with pytest.raises(RuntimeError, match="strict violation"):
            bus.publish("feedback")
        assert bus.errors == []

    def test_error_log_is_bounded(self):
        bus = ObserverBus()
        bus.subscribe("event", lambda *a: 1 / 0)
        for _ in range(ObserverBus.MAX_ERRORS + 7):
            bus.publish("event")
        assert len(bus.errors) == ObserverBus.MAX_ERRORS
        assert bus.dropped_errors == 7

    def test_unsubscribe_clears_propagate_flag(self):
        bus = ObserverBus()

        def strict(*a):
            raise RuntimeError("boom")

        bus.subscribe("drop", strict, propagate=True)
        bus.unsubscribe("drop", strict)
        bus.subscribe("drop", strict)  # re-attached as an isolated observer
        bus.publish("drop")  # must not raise
        assert len(bus.errors) == 1


# ---------------------------------------------------------------------------
# pipeline control flow
# ---------------------------------------------------------------------------

class TestPipeline:
    def test_stop_halts_the_chain(self):
        ran = []

        def a(ctx):
            ran.append("a")

        def b(ctx):
            ran.append("b")
            return STOP

        def c(ctx):
            ran.append("c")

        p = Pipeline([a, b, c], name="t")
        verdict = p.run(PipelineContext("pkt", 0))
        assert verdict is STOP
        assert ran == ["a", "b"]

    def test_defer_resumes_after_the_deferring_stage(self):
        sim = Simulator()
        ran = []

        def a(ctx):
            ran.append("a")

        def delay(ctx):
            ran.append("delay")
            sim.schedule(1e-6, p.resume, ctx)
            return DEFER

        def c(ctx):
            ran.append("c")
            return STOP

        p = Pipeline([a, delay, c], name="t")
        assert p.run(PipelineContext("pkt", 0)) is DEFER
        assert ran == ["a", "delay"]
        sim.run()
        assert ran == ["a", "delay", "c"]

    def test_describe_strips_stage_prefixes(self):
        def stage_admit(ctx):
            return None

        def stage_bridge(ctx):
            return STOP

        p = Pipeline([stage_admit, stage_bridge], name="x")
        assert p.stage_names() == ["admit", "bridge"]
        assert p.describe() == "admit -> bridge"


# ---------------------------------------------------------------------------
# the stage verdict tap (coverage-guided fuzzing feed)
# ---------------------------------------------------------------------------

class TestStageTap:
    def _chain(self, bus):
        def stage_admit(ctx):
            return None

        def stage_halt(ctx):
            return STOP

        def stage_never(ctx):  # pragma: no cover - halted before
            return None

        return Pipeline([stage_admit, stage_halt, stage_never],
                        name="sw0.rx", bus=bus)

    def test_stage_channel_publishes_name_and_verdict(self):
        bus = ObserverBus()
        got = []
        bus.subscribe("stage", lambda p, name, v: got.append((p.name, name, v)))
        p = self._chain(bus)
        assert p.run(PipelineContext("pkt", 0)) is STOP
        assert got == [("sw0.rx", "admit", None), ("sw0.rx", "halt", STOP)]

    def test_no_subscriber_means_no_publication(self):
        bus = ObserverBus()
        p = self._chain(bus)
        # no stage subscriber: the fast loop runs; arm one afterwards
        assert p.run(PipelineContext("pkt", 0)) is STOP
        got = []
        bus.subscribe("stage", lambda *a: got.append(a))
        p.run(PipelineContext("pkt", 0))
        assert len(got) == 2

    def test_busless_pipeline_still_runs(self):
        p = Pipeline([lambda ctx: STOP], name="bare")
        assert p.run(PipelineContext("pkt", 0)) is STOP

    def test_defer_verdict_reaches_the_tap(self):
        sim = Simulator()
        bus = ObserverBus()
        verdicts = []
        bus.subscribe("stage", lambda p, n, v: verdicts.append((n, v)))

        def stage_wait(ctx):
            sim.schedule(1e-6, p.resume, ctx)
            return DEFER

        def stage_done(ctx):
            return STOP

        p = Pipeline([stage_wait, stage_done], name="sw0.accel[inline]",
                     bus=bus)
        p.run(PipelineContext("pkt", 0))
        sim.run()
        assert verdicts == [("wait", DEFER), ("done", STOP)]


# ---------------------------------------------------------------------------
# no-observer fast path
# ---------------------------------------------------------------------------

def test_idle_bus_fast_path_microbenchmark():
    """The no-observer guard (`if bus.<channel>:`) must stay within
    noise of a bare attribute truthiness test — the datapath runs it on
    every packet at every publication site.  Bounded very loosely (20x)
    so only a pathological regression (e.g. publish() being entered on
    idle channels) trips it on shared CI machines."""
    bus = ObserverBus()
    n = 200_000

    def run_guarded():
        t0 = time.perf_counter()
        hits = 0
        for _ in range(n):
            if bus.emit:
                hits += 1  # pragma: no cover - idle bus never enters
        return time.perf_counter() - t0, hits

    def run_bare():
        empty = ()
        t0 = time.perf_counter()
        hits = 0
        for _ in range(n):
            if empty:
                hits += 1  # pragma: no cover
        return time.perf_counter() - t0, hits

    # warm up, then take the best of 3 to shed scheduler noise
    run_guarded(), run_bare()
    guarded = min(run_guarded()[0] for _ in range(3))
    bare = min(run_bare()[0] for _ in range(3))
    assert guarded < bare * 20 + 1e-3, (
        f"idle-bus guard too slow: {guarded:.4f}s vs bare {bare:.4f}s")


def test_idle_bus_publishes_nothing():
    """Publishing on an idle channel is legal and does nothing (the
    datapath's guard makes it unreachable, but the semantics hold)."""
    bus = ObserverBus()
    bus.publish("emit", "sw", "pkt", 1, 2)
    assert bus.errors == []
