"""Shared fixtures for the Cepheus reproduction test suite."""

from __future__ import annotations

import pytest

from repro.apps import Cluster
from repro.net import Simulator, star


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def testbed() -> Cluster:
    """The paper's 4-server single-switch testbed, Cepheus-enabled."""
    return Cluster.testbed(4)


@pytest.fixture
def testbed8() -> Cluster:
    return Cluster.testbed(8)


@pytest.fixture
def fat_tree_cluster() -> Cluster:
    """A k=4 fat-tree (16 hosts, 20 switches), Cepheus-enabled."""
    return Cluster.fat_tree_cluster(4)
