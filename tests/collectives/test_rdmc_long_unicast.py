"""RDMC binomial pipeline, 'long' spread-roll, and multi-unicast."""

import pytest

pytestmark = pytest.mark.slow  # Tier-2: multi-MB overlay broadcasts.

from repro.apps import Cluster
from repro.collectives.long_algo import LongBcast
from repro.collectives.rdmc import RdmcBcast
from repro.collectives.unicast import MultiUnicastBcast
from repro.errors import ConfigurationError


class TestRdmc:
    def test_delivers_to_all(self, testbed8):
        r = RdmcBcast(testbed8, testbed8.host_ips).run(4 << 20)
        assert set(r.recv_times) == set(testbed8.host_ips[1:])

    def test_step_count_near_optimal(self, testbed8):
        """Binomial pipeline bound: about d + B - 1 steps."""
        algo = RdmcBcast(testbed8, testbed8.host_ips, block_size=1 << 20)
        algo.run(32 << 20)  # B = 32, d = 3
        assert algo.steps_taken <= (3 + 32 - 1) + 3

    def test_single_block_message(self, testbed8):
        algo = RdmcBcast(testbed8, testbed8.host_ips)
        r = algo.run(1000)
        assert algo.steps_taken >= algo.d
        assert set(r.recv_times) == set(testbed8.host_ips[1:])

    def test_non_power_of_two_group(self):
        cl = Cluster.testbed(6)
        r = RdmcBcast(cl, cl.host_ips).run(4 << 20)
        assert set(r.recv_times) == set(cl.host_ips[1:])

    def test_three_members(self):
        cl = Cluster.testbed(3)
        r = RdmcBcast(cl, cl.host_ips).run(2 << 20)
        assert set(r.recv_times) == {2, 3}

    def test_bandwidth_near_optimal_for_many_blocks(self, testbed):
        """With B >> d the pipeline approaches one wire-time."""
        size = 64 << 20
        r = RdmcBcast(testbed, testbed.host_ips,
                      step_overhead=0.0).run(size)
        wire = size * 8 / 100e9
        assert r.jct < 1.6 * wire

    def test_invalid_block_size(self, testbed):
        with pytest.raises(ConfigurationError):
            RdmcBcast(testbed, testbed.host_ips, block_size=0)


class TestLong:
    def test_delivers_to_all(self, testbed8):
        r = LongBcast(testbed8, testbed8.host_ips).run(4 << 20)
        assert set(r.recv_times) == set(testbed8.host_ips[1:])

    def test_each_piece_received_exactly_once(self, testbed):
        """The roll stops after n-1 hops; no duplicates circulate."""
        algo = LongBcast(testbed, testbed.host_ips, pieces_per_node=2)
        counts = {ip: 0 for ip in testbed.host_ips[1:]}
        import repro.collectives.long_algo  # noqa: F401
        r = algo.run(1 << 20)
        # completion implies exactly npieces arrivals per receiver; a
        # duplicate would have tripped the count and finished early,
        # leaving the run() completeness check to fail.  Reaching here
        # with all receivers recorded is the assertion.
        assert set(r.recv_times) == {2, 3, 4}

    def test_bandwidth_reducing_vs_unicast(self, testbed8):
        size = 16 << 20
        long_jct = LongBcast(testbed8, testbed8.host_ips).run(size).jct
        uni_jct = MultiUnicastBcast(testbed8, testbed8.host_ips).run(size).jct
        assert long_jct < uni_jct

    def test_small_message(self, testbed):
        r = LongBcast(testbed, testbed.host_ips).run(2)
        assert set(r.recv_times) == {2, 3, 4}

    def test_invalid_pieces(self, testbed):
        with pytest.raises(ConfigurationError):
            LongBcast(testbed, testbed.host_ips, pieces_per_node=0)


class TestMultiUnicast:
    def test_delivers_to_all(self, testbed):
        r = MultiUnicastBcast(testbed, testbed.host_ips).run(1 << 20)
        assert set(r.recv_times) == {2, 3, 4}

    def test_sender_link_is_bottleneck(self, testbed8):
        """JCT ~ (n-1) full serializations of the message."""
        size = 8 << 20
        r = MultiUnicastBcast(testbed8, testbed8.host_ips).run(size)
        wire = size * 8 / 100e9
        assert r.jct >= 7 * wire * 0.9

    def test_receivers_finish_together(self, testbed8):
        """Interleaved copies: all receivers complete within ~one wire."""
        size = 8 << 20
        r = MultiUnicastBcast(testbed8, testbed8.host_ips).run(size)
        spread = max(r.recv_times.values()) - min(r.recv_times.values())
        assert spread < 0.25 * r.jct
