"""MPI collectives (§VIII many-to-many direction)."""

import pytest

from repro.apps import Cluster, Communicator
from repro.collectives import (Allgather, Alltoall, Barrier, Gather, Scatter)
from repro.errors import ConfigurationError


class TestScatterGather:
    def test_scatter_completes(self, testbed8):
        r = Scatter(testbed8, testbed8.host_ips).run(1 << 18)
        assert r.duration > 0 and r.rounds == 7

    def test_scatter_serializes_at_root(self, testbed8):
        """Distinct shards: the root's egress carries all n-1 of them."""
        size = 4 << 20
        r = Scatter(testbed8, testbed8.host_ips).run(size)
        wire = size * 8 / 100e9
        assert r.duration >= 7 * wire * 0.9

    def test_gather_concurrent_senders(self, testbed8):
        """Gather is root-ingress bound: ~n-1 shard times."""
        size = 4 << 20
        r = Gather(testbed8, testbed8.host_ips).run(size)
        wire = size * 8 / 100e9
        assert 7 * wire * 0.9 <= r.duration

    def test_small_members_rejected(self, testbed):
        with pytest.raises(ConfigurationError):
            Scatter(testbed, [1])


class TestAllgather:
    def test_ring_completes(self, testbed8):
        r = Allgather(testbed8, testbed8.host_ips, engine="ring").run(1 << 18)
        assert r.rounds == 7

    def test_cepheus_rotates_one_group(self):
        cl = Cluster.testbed(8)
        ag = Allgather(cl, cl.host_ips, engine="cepheus")
        r = ag.run(1 << 18)
        assert r.rounds == 8
        assert len(cl.fabric.groups) == 1  # one MFT, 8 source switches

    def test_engines_agree_on_magnitude(self):
        durations = {}
        for eng in ("ring", "cepheus"):
            cl = Cluster.testbed(8)
            durations[eng] = Allgather(cl, cl.host_ips,
                                       engine=eng).run(1 << 20).duration
        assert 0.3 < durations["cepheus"] / durations["ring"] < 3.0

    def test_cepheus_wins_small_shards(self):
        """Per-round latency: one MDT hop vs a full ring lap."""
        durations = {}
        for eng in ("ring", "cepheus"):
            cl = Cluster.testbed(16)
            durations[eng] = Allgather(cl, cl.host_ips,
                                       engine=eng).run(64).duration
        assert durations["cepheus"] < durations["ring"]

    def test_unknown_engine(self, testbed):
        with pytest.raises(ConfigurationError):
            Allgather(testbed, testbed.host_ips, engine="warp")


class TestAlltoall:
    def test_completes_power_of_two(self, testbed8):
        r = Alltoall(testbed8, testbed8.host_ips).run(1 << 16)
        assert r.duration > 0

    def test_completes_odd_group(self):
        cl = Cluster.testbed(5)
        r = Alltoall(cl, cl.host_ips).run(1 << 16)
        assert r.duration > 0

    def test_cost_scales_with_messages(self, testbed8):
        small = Alltoall(testbed8, testbed8.host_ips).run(1 << 12).duration
        cl = Cluster.testbed(8)
        big = Alltoall(cl, cl.host_ips).run(1 << 20).duration
        assert big > 5 * small


class TestBarrier:
    def test_dissemination_rounds(self, testbed8):
        r = Barrier(testbed8, testbed8.host_ips).run()
        assert r.rounds == 3  # ceil(log2 8)

    def test_cepheus_barrier_two_phases(self):
        cl = Cluster.testbed(8)
        r = Barrier(cl, cl.host_ips, engine="cepheus").run()
        assert r.rounds == 2

    def test_cepheus_faster_at_scale(self):
        durations = {}
        for eng in ("dissemination", "cepheus"):
            cl = Cluster.testbed(16)
            durations[eng] = Barrier(cl, cl.host_ips, engine=eng).run().duration
        assert durations["cepheus"] < durations["dissemination"]

    def test_unknown_engine(self, testbed):
        with pytest.raises(ConfigurationError):
            Barrier(testbed, testbed.host_ips, engine="warp")


class TestCommunicatorIntegration:
    def test_all_ops_via_comm(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "cepheus")
        assert comm.scatter(4096).duration > 0
        assert comm.gather(4096).duration > 0
        ag = comm.allgather(4096)
        assert ag.engine == "cepheus"
        assert comm.alltoall(4096).duration > 0
        assert comm.barrier().engine == "cepheus"

    def test_amcast_comm_uses_host_engines(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "binomial")
        assert comm.allgather(4096).engine == "ring"
        assert comm.barrier().engine == "dissemination"

    def test_ops_cached(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "chain")
        comm.barrier()
        comm.barrier()
        assert len([k for k in comm._ops if k[0] == "barrier"]) == 1
