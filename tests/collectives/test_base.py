"""BroadcastAlgorithm/BroadcastResult contract tests."""

import pytest

from repro.collectives.base import BroadcastAlgorithm, BroadcastResult
from repro.errors import ConfigurationError


class TestBroadcastResult:
    def _result(self):
        r = BroadcastResult(algorithm="x", root=1, size=1000, start=2.0)
        r.recv_times = {2: 2.5, 3: 2.3, 4: 2.9}
        return r

    def test_jct_is_last_receiver(self):
        assert self._result().jct == pytest.approx(0.9)

    def test_min_recv_latency(self):
        assert self._result().min_recv_latency == pytest.approx(0.3)

    def test_receiver_latency(self):
        assert self._result().receiver_latency(3) == pytest.approx(0.3)

    def test_goodput(self):
        r = self._result()
        assert r.goodput_gbps() == pytest.approx(1000 * 8 / 0.9 / 1e9)

    def test_empty_result_raises(self):
        r = BroadcastResult(algorithm="x", root=1, size=1, start=0.0)
        with pytest.raises(ConfigurationError):
            _ = r.jct


class TestAlgorithmContract:
    def test_root_must_be_member(self, testbed):
        from repro.collectives import ChainBcast
        with pytest.raises(ConfigurationError):
            ChainBcast(testbed, [1, 2], root=3)

    def test_rank_zero_is_root(self, testbed):
        from repro.collectives import ChainBcast
        algo = ChainBcast(testbed, [2, 3, 4], root=3)
        assert algo.ranks[0] == 3
        assert set(algo.ranks) == {2, 3, 4}

    def test_prepare_idempotent(self, testbed):
        from repro.collectives import BinomialTreeBcast
        algo = BinomialTreeBcast(testbed, testbed.host_ips)
        algo.prepare()
        pairs_before = len(testbed._pairs)
        algo.prepare()
        assert len(testbed._pairs) == pairs_before

    def test_incomplete_run_detected(self, testbed):
        """An engine whose receivers never finish must raise, not hang
        silently with a partial result."""

        class Broken(BroadcastAlgorithm):
            name = "broken"

            def _setup(self):
                pass

            def _launch(self, size, result):
                pass  # never delivers anything

        with pytest.raises(ConfigurationError, match="never completed"):
            Broken(testbed, testbed.host_ips).run(64)

    def test_events_accounted(self, testbed):
        from repro.collectives import CepheusBcast
        algo = CepheusBcast(testbed, testbed.host_ips)
        r = algo.run(1 << 16)
        assert r.events > 0
