"""Chain (pipelined) and increasing-ring broadcasts."""

import pytest

from repro.apps import Cluster
from repro.collectives.chain import ChainBcast, IncreasingRingBcast
from repro.errors import ConfigurationError


class TestChain:
    def test_delivers_to_all(self, testbed8):
        r = ChainBcast(testbed8, testbed8.host_ips, slices=4).run(1 << 20)
        assert set(r.recv_times) == set(testbed8.host_ips[1:])

    def test_latency_linear_in_chain_length(self):
        jcts = {}
        for n in (4, 16):
            cl = Cluster.testbed(n)
            jcts[n] = ChainBcast(cl, cl.host_ips, slices=1).run(64).jct
        # 15 hops vs 3 hops: ratio should be clearly super-logarithmic.
        assert jcts[16] / jcts[4] > 3.0

    def test_completion_order_follows_chain(self, testbed8):
        r = ChainBcast(testbed8, testbed8.host_ips, slices=2).run(1 << 20)
        ips = testbed8.host_ips
        times = [r.recv_times[ip] for ip in ips[1:]]
        assert times == sorted(times)

    @pytest.mark.slow  # Tier-2: repeats a large-message broadcast per slice count
    def test_more_slices_improve_large_message_jct(self):
        cl = Cluster.testbed(8)
        size = 32 << 20
        j1 = ChainBcast(cl, cl.host_ips, slices=1).run(size).jct
        j8 = ChainBcast(cl, cl.host_ips, slices=8).run(size).jct
        assert j8 < j1 * 0.55

    def test_slice_sizes_partition_message(self, testbed):
        algo = ChainBcast(testbed, testbed.host_ips, slices=4)
        sizes = algo._slice_sizes(32 * 1024 + 3)
        assert sum(sizes) == 32 * 1024 + 3 and len(sizes) == 4
        assert max(sizes) - min(sizes) <= 1

    def test_small_message_not_shredded(self, testbed):
        """min_slice keeps small messages in one piece — nobody slices
        a 1 KB message into per-byte fragments."""
        algo = ChainBcast(testbed, testbed.host_ips, slices=8)
        assert algo._slice_sizes(1003) == [1003]
        assert algo._slice_sizes(3) == [3]
        r = algo.run(3)
        assert set(r.recv_times) == {2, 3, 4}

    def test_min_slice_configurable(self, testbed):
        algo = ChainBcast(testbed, testbed.host_ips, slices=8, min_slice=1)
        assert algo._slice_sizes(3) == [1, 1, 1]

    def test_invalid_slices(self, testbed):
        with pytest.raises(ConfigurationError):
            ChainBcast(testbed, testbed.host_ips, slices=0)

    def test_rerun_consistent(self, testbed):
        algo = ChainBcast(testbed, testbed.host_ips, slices=4)
        a, b = algo.run(1 << 20), algo.run(1 << 20)
        assert b.jct == pytest.approx(a.jct, rel=0.01)


class TestIncreasingRing:
    def test_is_unsliced_chain(self, testbed):
        ring = IncreasingRingBcast(testbed, testbed.host_ips)
        assert ring.slices == 1
        assert ring.name == "increasing-ring"
        r = ring.run(1 << 20)
        assert set(r.recv_times) == {2, 3, 4}

    def test_slower_than_sliced_chain_for_large(self, testbed):
        size = 16 << 20
        ring = IncreasingRingBcast(testbed, testbed.host_ips).run(size).jct
        chain = ChainBcast(testbed, testbed.host_ips, slices=4).run(size).jct
        assert chain < ring
