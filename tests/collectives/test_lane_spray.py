"""k-path lane spraying end-to-end: delivery, failover, exactly-once.

The MRC-style properties under test (§II-B lineage): a broadcast
striped over k lanes still delivers exactly once to every receiver; a
lane killed mid-transfer is recovered by re-spraying its share over
the survivors, whose PSN streams never rewind — zero timeouts, zero
retransmitted packets on the surviving lanes, hence no group-wide
go-back-N.
"""

import pytest

from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.core.accelerator import AcceleratorConfig
from repro.errors import ConfigurationError
from repro.net.failures import FailureInjector
from repro.net.switch import SwitchConfig

DEPLOYMENTS = ("inline", "lookaside", "source_routed")


def _cluster(deployment, seed=0, k=4, hosts=None):
    return Cluster.fat_tree_cluster(
        k, hosts_limit=hosts,
        accel_config=AcceleratorConfig(deployment=deployment),
        switch_config=SwitchConfig(seed=seed))


class TestKLaneDelivery:
    @pytest.mark.parametrize("deployment", DEPLOYMENTS)
    @pytest.mark.parametrize("paths", (2, 4))
    def test_delivers_to_all(self, deployment, paths):
        cl = _cluster(deployment)
        members = cl.topo.host_ips[:6]
        r = CepheusBcast(cl, members, paths=paths).run(1 << 20)
        assert set(r.recv_times) == set(members[1:])
        assert r.sender_done is not None

    def test_one_qp_per_member_per_lane(self):
        cl = _cluster("inline")
        members = cl.topo.host_ips[:4]
        algo = CepheusBcast(cl, members, paths=3)
        algo.prepare()
        assert algo.group.paths == 3
        assert len(algo.group.lane_ids) == 3
        for lane in range(3):
            assert set(algo.group.lane_members[lane]) == set(members)

    def test_paths_must_be_positive(self, testbed):
        with pytest.raises(ConfigurationError):
            CepheusBcast(testbed, testbed.host_ips, paths=0)

    def test_safeguard_is_single_lane_only(self, testbed):
        with pytest.raises(ConfigurationError):
            CepheusBcast(testbed, testbed.host_ips, paths=2, safeguard=True)

    def test_source_switching_is_single_lane_only(self):
        cl = _cluster("inline")
        members = cl.topo.host_ips[:4]
        algo = CepheusBcast(cl, members, paths=2)
        algo.prepare()
        with pytest.raises(ConfigurationError):
            algo.set_source(members[1])

    @pytest.mark.parametrize("deployment", DEPLOYMENTS)
    def test_join_mid_group_gets_all_lanes(self, deployment):
        cl = _cluster(deployment)
        members = cl.topo.host_ips[:4]
        joiner = cl.topo.host_ips[4]
        algo = CepheusBcast(cl, members, paths=2)
        algo.prepare()
        algo.join(joiner)
        for lane in range(2):
            assert joiner in algo.group.lane_members[lane]
        r = algo.run(1 << 18)
        assert joiner in r.recv_times


class TestLaneFailover:
    """Lane killed mid-transfer: the exactly-once / no-GBN properties."""

    def _run_with_kill(self, deployment, seed, *, paths=2, k=4,
                       hosts=None, size=1 << 20, kill_lane=1):
        cl = _cluster(deployment, seed=seed, k=k, hosts=hosts)
        members = cl.topo.host_ips[:6]
        root = members[0]
        algo = CepheusBcast(cl, members, paths=paths,
                            lane_stall_timeout=5e-4)
        algo.prepare()
        injector = FailureInjector(cl.topo)
        sw, port = cl.topo.lane_uplinks(root, members, paths)[kill_lane]
        # mid-transfer: the 1MB spray takes ~100us end to end
        kill_at = cl.sim.now + 15e-6 + seed * 7e-6
        injector.fail_link(sw, port, at=kill_at)
        r = algo.run(size)
        return cl, algo, r

    @pytest.mark.parametrize("deployment", DEPLOYMENTS)
    @pytest.mark.parametrize("seed", (1, 2))
    def test_exactly_once_after_lane_kill(self, deployment, seed):
        cl, algo, r = self._run_with_kill(deployment, seed)
        members = cl.topo.host_ips[:6]
        # every receiver completed, and completed exactly once
        assert set(r.recv_times) == set(members[1:])
        for ip in members[1:]:
            assert algo.reassemblers[ip]._completed == {algo.sprayer.spray_id}
        # the kill was actually detected and recovered by re-spray
        assert algo.sprayer.dead == {1}
        assert algo.sprayer.resprays >= 1
        assert algo.health.dead_events

    @pytest.mark.parametrize("deployment", DEPLOYMENTS)
    @pytest.mark.parametrize("seed", (1, 2))
    def test_no_group_wide_go_back_n(self, deployment, seed):
        """Surviving lanes never rewind: zero timeouts, zero retransmits."""
        cl, algo, r = self._run_with_kill(deployment, seed)
        root = cl.topo.host_ips[0]
        for lane in algo.sprayer.live_lanes:
            qp = algo.group.lane_members[lane][root]
            assert qp.timeouts == 0
            assert qp.retransmitted_packets == 0

    def test_dead_lane_stays_dead_across_sprays(self):
        cl, algo, _ = self._run_with_kill("inline", 1)
        r2 = algo.run(1 << 19)  # second broadcast: sprays on survivor only
        members = cl.topo.host_ips[:6]
        assert set(r2.recv_times) == set(members[1:])
        assert algo.sprayer.dead == {1}
        assert algo.sprayer.resprays == 0  # nothing posted on the dead lane

    def test_four_lanes_on_wide_fat_tree(self):
        """k=4 needs fat_tree(8): four edge-disjoint uplink stages."""
        cl, algo, r = self._run_with_kill(
            "inline", 1, paths=4, k=8, hosts=16, size=1 << 19, kill_lane=2)
        members = cl.topo.host_ips[:6]
        assert set(r.recv_times) == set(members[1:])
        assert algo.sprayer.dead == {2}
        root = members[0]
        for lane in algo.sprayer.live_lanes:
            qp = algo.group.lane_members[lane][root]
            assert qp.timeouts == 0 and qp.retransmitted_packets == 0
