"""Binomial tree broadcast."""

import math

import pytest

from repro.collectives.binomial import BinomialTreeBcast, binomial_children
from repro.errors import ConfigurationError


class TestChildrenFunction:
    def test_root_children_are_powers_of_two(self):
        assert binomial_children(0, 8) == [1, 2, 4]
        assert binomial_children(0, 16) == [1, 2, 4, 8]

    def test_interior_nodes(self):
        assert binomial_children(1, 8) == [3, 5]
        assert binomial_children(2, 8) == [6]
        assert binomial_children(3, 8) == [7]

    def test_leaves_have_no_children(self):
        for leaf in (5, 6, 7):
            assert binomial_children(leaf, 8) == []

    def test_non_power_of_two(self):
        assert binomial_children(0, 6) == [1, 2, 4]
        assert binomial_children(2, 6) == []
        assert binomial_children(1, 6) == [3, 5]

    def test_every_rank_has_exactly_one_parent(self):
        for n in (2, 3, 5, 8, 13, 16, 33):
            seen = {}
            for r in range(n):
                for c in binomial_children(r, n):
                    assert c not in seen, f"rank {c} has two parents (n={n})"
                    seen[c] = r
            assert set(seen) == set(range(1, n))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            binomial_children(8, 8)


class TestBroadcast:
    def test_all_receivers_get_message(self, testbed8):
        r = BinomialTreeBcast(testbed8, testbed8.host_ips).run(1 << 16)
        assert set(r.recv_times) == set(testbed8.host_ips[1:])

    def test_non_default_root(self, testbed):
        r = BinomialTreeBcast(testbed, testbed.host_ips, root=3).run(4096)
        assert set(r.recv_times) == {1, 2, 4}

    def test_logarithmic_rounds_for_small_messages(self):
        """JCT grows ~log2(n): n=16 should take about 2x n=4's rounds,
        nowhere near the 5x of a chain."""
        from repro.apps import Cluster
        jcts = {}
        for n in (4, 16):
            cl = Cluster.testbed(n)
            jcts[n] = BinomialTreeBcast(cl, cl.host_ips).run(64).jct
        assert jcts[16] / jcts[4] < 3.0

    def test_large_message_root_bottleneck(self):
        """For large messages the root transmits ceil(log2 n) copies:
        JCT is at least that many serializations."""
        from repro.apps import Cluster
        cl = Cluster.testbed(8)
        size = 16 << 20
        r = BinomialTreeBcast(cl, cl.host_ips).run(size)
        wire = size * 8 / 100e9
        assert r.jct >= 3 * wire * 0.9

    def test_rerunnable(self, testbed):
        algo = BinomialTreeBcast(testbed, testbed.host_ips)
        a = algo.run(4096)
        b = algo.run(4096)
        assert b.jct == pytest.approx(a.jct, rel=0.01)

    def test_two_members_degenerate(self, testbed):
        r = BinomialTreeBcast(testbed, [1, 2]).run(4096)
        assert set(r.recv_times) == {2}

    def test_single_member_rejected(self, testbed):
        with pytest.raises(ConfigurationError):
            BinomialTreeBcast(testbed, [1])
