"""The Cepheus broadcast primitive end-to-end."""

import pytest

from repro.apps import Cluster
from repro.collectives import (BinomialTreeBcast, CepheusBcast, ChainBcast,
                               MultiUnicastBcast)
from repro.errors import ConfigurationError


class TestBasics:
    def test_delivers_to_all(self, testbed):
        r = CepheusBcast(testbed, testbed.host_ips).run(1 << 20)
        assert set(r.recv_times) == {2, 3, 4}
        assert r.sender_done is not None

    def test_requires_fabric(self):
        cl = Cluster.testbed(4, cepheus=False)
        with pytest.raises(ConfigurationError):
            CepheusBcast(cl, cl.host_ips)

    def test_one_qp_per_member(self, testbed):
        algo = CepheusBcast(testbed, testbed.host_ips)
        algo.prepare()
        assert len(algo.qps) == 4  # exactly one RC connection per member

    def test_registration_excluded_from_jct(self, testbed):
        algo = CepheusBcast(testbed, testbed.host_ips)
        algo.prepare()
        t_reg = testbed.sim.now
        r = algo.run(64)
        assert r.start >= t_reg
        assert r.jct < 10e-6  # pure data-path time

    def test_repeat_runs_reuse_group(self, testbed):
        algo = CepheusBcast(testbed, testbed.host_ips)
        a = algo.run(8192)
        b = algo.run(8192)
        assert b.jct == pytest.approx(a.jct, rel=0.05)
        assert len(testbed.fabric.groups) == 1

    def test_receivers_all_within_one_replication(self, testbed):
        """All receivers complete nearly simultaneously (one MDT)."""
        r = CepheusBcast(testbed, testbed.host_ips).run(4 << 20)
        spread = max(r.recv_times.values()) - min(r.recv_times.values())
        assert spread < 2e-6


@pytest.mark.slow  # Tier-2: 64MB broadcasts for the headline bands
class TestPerformanceClaims:
    """The §V-A headline comparisons, asserted as bands."""

    @pytest.fixture(scope="class")
    def jcts(self):
        out = {}
        for size in (64, 64 << 20):
            cl = Cluster.testbed(4)
            out[size] = {
                "cepheus": CepheusBcast(cl, cl.host_ips).run(size).jct,
                "bt": BinomialTreeBcast(cl, cl.host_ips).run(size).jct,
                "chain": ChainBcast(cl, cl.host_ips, slices=4).run(size).jct,
                "unicast": MultiUnicastBcast(cl, cl.host_ips).run(size).jct,
            }
        return out

    def test_small_message_vs_bt(self, jcts):
        ratio = jcts[64]["bt"] / jcts[64]["cepheus"]
        assert 2.0 <= ratio <= 4.0  # paper band 2.5-3.5

    def test_small_message_vs_chain(self, jcts):
        ratio = jcts[64]["chain"] / jcts[64]["cepheus"]
        assert 3.0 <= ratio <= 5.5  # paper band 3-5.2

    def test_large_message_vs_bt(self, jcts):
        ratio = jcts[64 << 20]["bt"] / jcts[64 << 20]["cepheus"]
        assert 1.8 <= ratio <= 3.2  # paper band 2-2.8

    def test_large_message_vs_chain(self, jcts):
        ratio = jcts[64 << 20]["chain"] / jcts[64 << 20]["cepheus"]
        assert 1.3 <= ratio <= 2.8  # paper band

    def test_near_line_rate_goodput(self, jcts):
        size = 64 << 20
        goodput = size * 8 / jcts[size]["cepheus"] / 1e9
        assert goodput > 90  # multicast at ~unicast line rate

    def test_beats_unicast_everywhere(self, jcts):
        for size in jcts:
            assert jcts[size]["cepheus"] < jcts[size]["unicast"]


class TestSourceRotation:
    def test_set_source_keeps_working(self, testbed):
        algo = CepheusBcast(testbed, testbed.host_ips)
        algo.run(8192)
        algo.set_source(3)
        r = algo.run(8192)
        assert set(r.recv_times) == {1, 2, 4}
        assert algo.coordinator.switch_count == 1

    def test_rotation_does_not_reregister(self, testbed):
        algo = CepheusBcast(testbed, testbed.host_ips)
        algo.run(4096)
        groups_before = len(testbed.fabric.groups)
        for src in (2, 3, 4, 1):
            algo.set_source(src)
            algo.run(4096)
        assert len(testbed.fabric.groups) == groups_before
