"""Reduction primitives + allreduce compositions (§VIII extension)."""

import pytest

pytestmark = pytest.mark.slow  # Tier-2: full reduction/allreduce runs take tens of seconds.

from repro.apps import Cluster
from repro.collectives import (AllReduce, BinomialReduce, RingReduceScatter)
from repro.collectives.reduce import REDUCE_COMPUTE_BPS
from repro.errors import ConfigurationError


class TestBinomialReduce:
    def test_completes(self, testbed8):
        r = BinomialReduce(testbed8, testbed8.host_ips).run(1 << 20)
        assert r.done is not None and r.duration > 0

    def test_combines_once_per_edge(self, testbed8):
        """A reduction over N members needs exactly N-1 combines."""
        r = BinomialReduce(testbed8, testbed8.host_ips).run(1 << 16)
        assert r.combines == 7

    def test_logarithmic_depth(self):
        jcts = {}
        for n in (4, 16):
            cl = Cluster.testbed(n)
            jcts[n] = BinomialReduce(cl, cl.host_ips).run(64).duration
        assert jcts[16] / jcts[4] < 3.0

    def test_compute_cost_counted(self, testbed):
        size = 32 << 20
        r = BinomialReduce(testbed, testbed.host_ips).run(size)
        assert r.duration > size * 8 / REDUCE_COMPUTE_BPS

    def test_custom_root(self, testbed):
        r = BinomialReduce(testbed, testbed.host_ips, root=3).run(4096)
        assert r.root == 3 and r.done is not None

    def test_too_few_members(self, testbed):
        with pytest.raises(ConfigurationError):
            BinomialReduce(testbed, [1])


class TestRingReduceScatter:
    def test_completes(self, testbed8):
        r = RingReduceScatter(testbed8, testbed8.host_ips).run(8 << 20)
        assert r.done is not None

    def test_combine_count(self, testbed):
        """Each of N shards combines at N-1 stops: N(N-1) total."""
        r = RingReduceScatter(testbed, testbed.host_ips).run(1 << 20)
        assert r.combines == 4 * 3

    def test_bandwidth_beats_binomial_at_scale(self):
        cl = Cluster.testbed(8)
        size = 64 << 20
        ring = RingReduceScatter(cl, cl.host_ips).run(size).duration
        bt = BinomialReduce(cl, cl.host_ips).run(size).duration
        assert ring < bt

    def test_tiny_vector(self, testbed):
        r = RingReduceScatter(testbed, testbed.host_ips).run(2)
        assert r.done is not None


class TestAllReduce:
    def test_unknown_strategy(self, testbed):
        with pytest.raises(ConfigurationError):
            AllReduce(testbed, testbed.host_ips, "magic")

    def test_unknown_engine(self, testbed):
        with pytest.raises(ConfigurationError):
            AllReduce(testbed, testbed.host_ips, "ps-warp-drive")

    @pytest.mark.parametrize("strategy",
                             ["ring", "ps-cepheus", "ps-binomial",
                              "ps-multi-unicast"])
    def test_strategies_complete(self, strategy):
        cl = Cluster.testbed(4)
        r = AllReduce(cl, cl.host_ips, strategy).run(4 << 20)
        assert r.total > 0
        assert r.total == pytest.approx(r.reduce_time + r.distribute_time)

    def test_cepheus_distribution_wins_among_ps(self):
        """The paper's PS motivation: the distribution half collapses
        to ~one wire-time with multicast."""
        size = 32 << 20
        totals = {}
        for strat in ("ps-cepheus", "ps-binomial", "ps-multi-unicast"):
            cl = Cluster.testbed(8)
            totals[strat] = AllReduce(cl, cl.host_ips, strat).run(size)
        assert totals["ps-cepheus"].distribute_time < \
            0.5 * totals["ps-binomial"].distribute_time
        assert totals["ps-cepheus"].total < totals["ps-binomial"].total
        assert totals["ps-cepheus"].total < totals["ps-multi-unicast"].total

    def test_cepheus_ps_competitive_with_ring(self):
        """At large sizes PS+multicast is in ring-allreduce's league —
        impossible with unicast distribution."""
        size = 64 << 20
        cl1, cl2 = Cluster.testbed(8), Cluster.testbed(8)
        ps = AllReduce(cl1, cl1.host_ips, "ps-cepheus").run(size)
        ring = AllReduce(cl2, cl2.host_ips, "ring").run(size)
        assert ps.total < 1.3 * ring.total

    def test_busbw(self):
        cl = Cluster.testbed(4)
        r = AllReduce(cl, cl.host_ips, "ps-cepheus").run(16 << 20)
        assert 0 < r.busbw_gbps() < 100
