"""Report formatting helpers."""

import pytest

from repro.harness.report import (ExperimentResult, fmt_size, fmt_time,
                                  format_table, ratio)


class TestFormatters:
    def test_fmt_size(self):
        assert fmt_size(64) == "64B"
        assert fmt_size(1 << 10) == "1KB"
        assert fmt_size(1 << 20) == "1MB"
        assert fmt_size(512 << 20) == "512MB"
        assert fmt_size(1 << 30) == "1GB"
        assert fmt_size(1500) == "1500B"

    def test_fmt_time(self):
        assert fmt_time(2.5) == "2.500s"
        assert fmt_time(3.2e-3) == "3.20ms"
        assert fmt_time(4.5e-6) == "4.5us"

    def test_ratio(self):
        assert ratio(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            ratio(1.0, 0.0)


class TestExperimentResult:
    def _result(self):
        res = ExperimentResult(
            exp_id="figX", title="demo", headers=["size", "jct"],
            paper_claim="should be fast", notes="quick mode",
        )
        res.rows.append({"size": "64B", "jct": 1.234567})
        res.rows.append({"size": "1MB", "jct": 89.0})
        return res

    def test_column_extraction(self):
        assert self._result().column("size") == ["64B", "1MB"]

    def test_table_contains_everything(self):
        text = format_table(self._result())
        assert "figX" in text and "demo" in text
        assert "should be fast" in text
        assert "quick mode" in text
        assert "64B" in text and "1MB" in text

    def test_table_aligns_columns(self):
        lines = format_table(self._result()).splitlines()
        header = next(l for l in lines if l.startswith("size"))
        sep = lines[lines.index(header) + 1]
        assert len(sep) == len(header)

    def test_empty_rows_ok(self):
        res = ExperimentResult("e", "t", ["a"])
        assert "e" in format_table(res)


class TestRunnerRegistry:
    def test_all_paper_artifacts_covered(self):
        from repro.harness.runner import ALL_EXPERIMENTS
        for exp in ("fig7b", "fig8", "fig9", "rdmc", "tab1", "fig10",
                    "fig11", "fig12", "fig13", "fig14"):
            assert exp in ALL_EXPERIMENTS

    def test_ablations_registered(self):
        from repro.harness.runner import ALL_EXPERIMENTS
        assert {"abl-ack", "abl-nack", "abl-cnp", "abl-retx",
                "abl-mem"} <= set(ALL_EXPERIMENTS)


class TestCheapExperiments:
    """Smoke the cheap experiment functions end-to-end."""

    def test_fig7b(self):
        from repro.harness.experiments import fig7b_memory
        res = fig7b_memory()
        row = res.rows[0]
        assert row["total_MB"] < 0.8
        assert row["bytes_per_group"] == 724

    def test_ablation_memory(self):
        from repro.harness.ablations import ablation_state_memory
        res = ablation_state_memory()
        ratios = res.column("ratio")
        assert ratios == sorted(ratios)
        assert ratios[-1] > 50  # 4096-member group vs port-bounded state


class TestExports:
    def _result(self):
        from repro.harness.report import ExperimentResult
        res = ExperimentResult("figX", "demo", ["size", "jct"])
        res.rows.append({"size": "64B", "jct": 1.5})
        res.rows.append({"size": "1MB", "jct": 89.0, "extra": "ignored"})
        return res

    def test_csv_roundtrip(self):
        import csv
        import io
        text = self._result().to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0] == {"size": "64B", "jct": "1.5"}
        assert rows[1]["size"] == "1MB"
        assert "extra" not in rows[1]

    def test_json_roundtrip(self):
        import json
        doc = json.loads(self._result().to_json())
        assert doc["exp_id"] == "figX"
        assert doc["rows"][0]["jct"] == 1.5
        assert doc["headers"] == ["size", "jct"]

    def test_missing_cells_empty_in_csv(self):
        from repro.harness.report import ExperimentResult
        res = ExperimentResult("e", "t", ["a", "b"])
        res.rows.append({"a": 1})
        assert ",\r\n" in res.to_csv() or ",\n" in res.to_csv()


class TestJsonRoundTrip:
    """to_json/from_json must be lossless and byte-deterministic."""

    def _result(self):
        from repro.harness.report import ExperimentResult
        res = ExperimentResult(
            "figX", "demo — en-dash", ["size", "jct"],
            paper_claim="±5 %", notes="unicode ✓ ümlaut — quick",
            mode="quick")
        res.rows.append({"size": "64B", "jct": 1.5})
        res.rows.append({"size": "1MB", "jct": 89.0})
        return res

    def test_roundtrip_equality(self):
        from repro.harness.report import ExperimentResult
        res = self._result()
        back = ExperimentResult.from_json(res.to_json())
        assert back == res

    def test_roundtrip_nonfinite_and_unicode(self):
        import math
        from repro.harness.report import ExperimentResult
        res = self._result()
        res.rows.append({"size": "nan", "jct": float("nan")})
        res.rows.append({"size": "inf", "jct": float("inf")})
        res.rows.append({"size": "-inf", "jct": float("-inf")})
        back = ExperimentResult.from_json(res.to_json())
        assert math.isnan(back.rows[2]["jct"])
        assert back.rows[3]["jct"] == float("inf")
        assert back.rows[4]["jct"] == float("-inf")
        assert back.notes == "unicode ✓ ümlaut — quick"

    def test_json_is_strict(self):
        """Non-finite floats must not leak as bare NaN/Infinity tokens
        (invalid JSON that breaks jq and the bench gate)."""
        res = self._result()
        res.rows.append({"size": "nan", "jct": float("nan")})
        text = res.to_json()
        assert "NaN" not in text and "Infinity" not in text
        assert '"__nonfinite__": "nan"' in text

    def test_volatile_fields_excluded(self):
        """Wall time and cache provenance must not change the payload —
        the determinism guarantee and cache identity depend on it."""
        a, b = self._result(), self._result()
        b.wall_time_s = 123.4
        b.cached = True
        assert a.to_json() == b.to_json()

    def test_byte_determinism(self):
        assert self._result().to_json() == self._result().to_json()

    def test_genuine_string_nan_survives(self):
        """A *string* cell 'nan' must not be confused with float NaN."""
        from repro.harness.report import ExperimentResult
        res = ExperimentResult("e", "t", ["a"])
        res.rows.append({"a": "nan"})
        back = ExperimentResult.from_json(res.to_json())
        assert back.rows[0]["a"] == "nan"
        assert isinstance(back.rows[0]["a"], str)

    def test_provenance_line_in_table(self):
        from repro.harness.report import format_table
        res = self._result()
        res.wall_time_s = 2.0
        res.cached = True
        text = format_table(res)
        assert "run: wall 2.0s (quick) [cached]" in text


class TestAsciiChart:
    def test_empty(self):
        from repro.harness.report import ascii_chart
        assert "empty" in ascii_chart({})
        assert "empty" in ascii_chart({"a": []})

    def test_marks_unique_even_with_name_collisions(self):
        from repro.harness.report import ascii_chart
        out = ascii_chart({"f1": [1.0], "f2": [2.0], "f3": [3.0]},
                          width=4, height=4)
        legend = out.splitlines()[-1]
        assert "1=f1" in legend and "2=f2" in legend and "3=f3" in legend

    def test_peak_row_hit(self):
        from repro.harness.report import ascii_chart
        out = ascii_chart({"x": [0.0, 10.0]}, width=2, height=5)
        top_row = out.splitlines()[0]
        assert "10.0" in top_row
        assert top_row.strip().endswith("x") or "x" in top_row

    def test_overlap_marker(self):
        from repro.harness.report import ascii_chart
        out = ascii_chart({"a": [5.0, 5.0], "b": [5.0, 5.0]},
                          width=2, height=3)
        assert "*" in out

    def test_downsampling_long_series(self):
        from repro.harness.report import ascii_chart
        out = ascii_chart({"s": list(range(1000))}, width=10, height=4)
        body = out.splitlines()[0]
        assert len(body) < 140  # downsampled, not one col per sample
