"""Generic sweep utility."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.sweeps import BcastSweep


class TestBcastSweep:
    def test_full_grid_produced(self):
        sweep = BcastSweep(sizes=[4096, 1 << 16], group_sizes=[3, 4],
                           algorithms=["cepheus", "chain"])
        res = sweep.run()
        assert len(res.rows) == 4  # 2 sizes x 2 group sizes
        assert set(res.headers) == {"group", "size", "cepheus_jct",
                                    "chain_jct"}
        assert all(row["cepheus_jct"] > 0 for row in res.rows)

    def test_ordering_preserved_in_rows(self):
        sweep = BcastSweep(sizes=[64, 1 << 20], group_sizes=[4],
                           algorithms=["cepheus", "binomial"])
        res = sweep.run()
        assert all(r["binomial_jct"] > r["cepheus_jct"] for r in res.rows)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            BcastSweep(sizes=[64], group_sizes=[4], algorithms=["nope"])

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            BcastSweep(sizes=[], group_sizes=[4], algorithms=["cepheus"])

    def test_parallel_matches_serial(self):
        sweep = BcastSweep(sizes=[4096, 1 << 16], group_sizes=[3, 4],
                           algorithms=["cepheus", "chain"])
        serial = sweep.run()
        parallel = sweep.run(jobs=2)
        assert parallel.rows == serial.rows
        assert parallel.headers == serial.headers

    def test_custom_cluster_factory(self):
        from repro.apps import Cluster

        made = []

        def factory(n):
            cl = Cluster.fat_tree_cluster(4)
            made.append(n)
            return cl

        sweep = BcastSweep(sizes=[4096], group_sizes=[4],
                           algorithms=["cepheus"], cluster_factory=factory)
        res = sweep.run()
        assert made == [4]
        assert len(res.rows) == 1
