"""The CLI harness entry point."""

import io

import pytest

from repro.harness.runner import ALL_EXPERIMENTS, main, run_experiments


class TestRunExperiments:
    def test_streams_tables(self):
        out = io.StringIO()
        results = run_experiments(["fig7b", "abl-mem"], quick=True,
                                  stream=out)
        text = out.getvalue()
        assert len(results) == 2
        assert "fig7b" in text and "abl-mem" in text
        assert "wall" in results[0].notes

    def test_quick_tag_recorded(self):
        out = io.StringIO()
        (res,) = run_experiments(["fig7b"], quick=True, stream=out)
        assert "(quick)" in res.notes


class TestMainCli:
    def test_only_selection(self, capsys):
        assert main(["--only", "fig7b"]) == 0
        captured = capsys.readouterr()
        assert "MFT memory" in captured.out

    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "fig99"])

    def test_registry_complete(self):
        assert len(ALL_EXPERIMENTS) >= 15
