"""The CLI harness entry point."""

import io
import json

import pytest

from repro.harness.runner import ALL_EXPERIMENTS, main, run_experiments


class TestRunExperiments:
    def test_streams_tables(self):
        out = io.StringIO()
        results = run_experiments(["fig7b", "abl-mem"], quick=True,
                                  stream=out)
        text = out.getvalue()
        assert len(results) == 2
        assert "fig7b" in text and "abl-mem" in text
        assert results[0].wall_time_s > 0
        assert "run:" in text and "wall" in text

    def test_quick_tag_recorded(self):
        out = io.StringIO()
        (res,) = run_experiments(["fig7b"], quick=True, stream=out)
        assert res.mode == "quick"
        assert "(quick)" in out.getvalue()

    def test_parallel_jobs(self):
        out = io.StringIO()
        results = run_experiments(["fig7b", "abl-mem"], quick=True,
                                  stream=out, jobs=2)
        assert [r.exp_id for r in results] == ["fig7b", "abl-mem"]

    def test_cache_dir_roundtrip(self, tmp_path):
        cache = tmp_path / "cache"
        first = run_experiments(["fig7b"], quick=True, stream=io.StringIO(),
                                cache_dir=str(cache))
        warm = run_experiments(["fig7b"], quick=True, stream=io.StringIO(),
                               cache_dir=str(cache))
        assert warm[0].cached and not first[0].cached
        assert warm[0].to_json() == first[0].to_json()


class TestMainCli:
    def test_only_selection(self, capsys):
        assert main(["--only", "fig7b", "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "MFT memory" in captured.out

    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "fig99"])

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["--only", "fig7b", "--jobs", "0"])

    def test_emit_writes_bench_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_quick.json"
        assert main(["--only", "fig7b", "--no-cache",
                     "--emit", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "cepheus-bench/v2"
        assert doc["mode"] == "quick"
        entry = doc["experiments"]["fig7b"]
        assert entry["events"] >= 0 and entry["wall_s"] >= 0
        assert "mean_total_MB" in entry["metrics"]

    def test_cache_dir_option(self, tmp_path, capsys):
        cache = tmp_path / "c"
        assert main(["--only", "fig7b", "--cache-dir", str(cache)]) == 0
        assert main(["--only", "fig7b", "--cache-dir", str(cache)]) == 0
        err = capsys.readouterr().err
        assert "1 cached" in err

    def test_registry_complete(self):
        assert len(ALL_EXPERIMENTS) >= 15
