"""Golden-value regression suite.

Every registry experiment runs once in quick mode and its headline
metrics are compared against the committed fixtures in
``tests/harness/golden/`` using the per-metric tolerances of
``benchmarks/tolerances.json`` — the same tolerance file the
``cepheus-repro bench compare`` CI gate uses, so a PR that moves a
headline number fails here first with a readable diff.

To *intentionally* move a headline (model change, new calibration),
regenerate the fixtures and commit the diff::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/harness/test_golden_results.py
    PYTHONPATH=src python -m repro.cli bench emit --jobs 4 --no-cache \
        --out benchmarks/baselines/BENCH_quick.json

(see docs/TESTING.md, "Golden fixtures").

The cheap experiments run in tier 1; the minutes-long ones carry the
``slow`` marker and run in tier 2 / CI-main only.
"""

import json
import os
import pathlib

import pytest

from repro.harness import bench
from repro.harness.engine import execute_one
from repro.harness.runner import ALL_EXPERIMENTS

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
TOLERANCES_PATH = (pathlib.Path(__file__).parents[2]
                   / "benchmarks" / "tolerances.json")
REGEN = os.environ.get("GOLDEN_REGEN") == "1"

#: Experiments cheap enough (< ~1 s) for tier 1; the rest are tier 2.
CHEAP = {"fig7b", "fig8", "fig10", "abl-ack", "abl-cnp", "abl-retx",
         "abl-deploy", "abl-mem", "churn", "srmc_scaling", "brokerfabric",
         "mrc_fanin", "mrc_loss"}

PARAMS = [pytest.param(name, marks=() if name in CHEAP
                       else (pytest.mark.slow,))
          for name in ALL_EXPERIMENTS]


def test_every_experiment_has_a_fixture():
    missing = [n for n in ALL_EXPERIMENTS
               if not (GOLDEN_DIR / f"{n}.json").exists()]
    assert REGEN or not missing, \
        (f"no golden fixture for {missing}; run GOLDEN_REGEN=1 pytest "
         f"{pathlib.Path(__file__).name} to create them")


@pytest.mark.parametrize("name", PARAMS)
def test_golden(name):
    entry = execute_one(name, True)
    metrics = entry["metrics"]
    path = GOLDEN_DIR / f"{name}.json"
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(
            {"exp_id": name, "mode": "quick", "metrics": metrics},
            indent=2, sort_keys=True) + "\n")
        return
    golden = json.loads(path.read_text())["metrics"]
    tolerances = bench.load_tolerances(str(TOLERANCES_PATH))
    problems = []
    for metric in sorted(golden):
        full_name = f"{name}.{metric}"
        tol = bench.tolerance_for(full_name, tolerances)
        expected = golden[metric]
        got = metrics.get(metric)
        if got is None:
            problems.append(f"  {full_name}: missing (golden {expected:.6g})")
            continue
        denom = abs(expected) if abs(expected) > 1e-12 else 1.0
        drift = abs(got - expected) / denom
        if drift > tol:
            problems.append(
                f"  {full_name}: golden {expected:.6g} -> got {got:.6g} "
                f"(drift {drift:.2%} > tol {tol:.2%})")
    assert not problems, (
        f"{name}: {len(problems)} headline metric(s) drifted beyond "
        f"tolerance:\n" + "\n".join(problems)
        + "\nIf intentional, regenerate fixtures: GOLDEN_REGEN=1 pytest "
          "tests/harness/test_golden_results.py (docs/TESTING.md)")
