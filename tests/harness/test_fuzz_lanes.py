"""Lane-aware fuzzing: the k-differential oracle and lane-kill mutation.

The deployment-differential oracle already runs inside each trial;
this file adds the *lane-count* differential — the same schedule run
at paths 1, 2 and 4 must deliver the same bytes to the same receivers
— plus the lane-kill scheduling/sanitization contract and the corpus
hash-stability guarantee (pre-lane inputs keep their content hashes).
"""

import random

from dataclasses import replace

from repro.check import CoverageMap
from repro.harness.fuzz import (MUTATIONS, FuzzConfig, FuzzSchedule,
                                _run_one_deployment, _sanitize, _Shape,
                                generate_fuzz_schedule, mutate_schedule,
                                run_fuzz_trial)


def _cfg(paths, **kw):
    base = dict(topo="fat_tree", k=4, hosts=8, initial_members=6,
                messages=2, msg_packets=8, paths=paths)
    base.update(kw)
    return FuzzConfig(**base)


def _clean_schedule(cfg, shape):
    return _sanitize(cfg, shape, FuzzSchedule(
        trial_seed=5, sources=(shape.leader, shape.leader),
        offsets=(0.0, 0.002), incidents=(), churn=()))


def _bytes_by_ip(seq):
    """Collapse a delivery log to {ip: {message ordinal: byte total}}."""
    out = {}
    for key, deliveries in seq.items():
        ip = key[0] if isinstance(key, tuple) else key
        for ordinal, _psn, payload in deliveries:
            per_msg = out.setdefault(ip, {})
            per_msg[ordinal] = per_msg.get(ordinal, 0) + payload
    return out


class TestLaneCountDifferential:
    def test_same_bytes_at_k_1_2_4(self):
        results = {}
        for paths in (1, 2, 4):
            cfg = _cfg(paths)
            shape = _Shape(cfg)
            schedule = _clean_schedule(cfg, shape)
            run = _run_one_deployment(cfg, schedule, "inline",
                                      CoverageMap())
            assert run["completed"] == 2
            assert run["source_idle"]
            assert run["violations"] == []
            results[paths] = _bytes_by_ip(run["seq"])
        assert results[1] == results[2] == results[4]

    def test_full_trial_passes_at_k2(self):
        cfg = _cfg(2)
        shape = _Shape(cfg)
        doc = run_fuzz_trial(cfg, _clean_schedule(cfg, shape))
        assert not doc["failing"], doc["fail_reasons"]


class TestLaneKillScheduling:
    def test_lane_kill_trial_invariant_clean(self):
        cfg = _cfg(2)
        shape = _Shape(cfg)
        schedule = _sanitize(cfg, shape, replace(
            _clean_schedule(cfg, shape),
            lane_kills=((1, 0.004, 0.02),)))
        assert schedule.lane_kills
        doc = run_fuzz_trial(cfg, schedule)
        assert not doc["failing"], doc["fail_reasons"]
        for dep in cfg.deployments:
            assert f"lanekill/{dep}/installed" in doc["coverage"]

    def test_lane_kill_skipped_on_star(self):
        cfg = _cfg(2, topo="star")
        shape = _Shape(cfg)
        schedule = _sanitize(cfg, shape, replace(
            _clean_schedule(cfg, shape),
            lane_kills=((1, 0.004, 0.02),)))
        doc = run_fuzz_trial(cfg, schedule)
        assert not doc["failing"], doc["fail_reasons"]
        for dep in cfg.deployments:
            assert f"lanekill/{dep}/no-exclusive-uplink" in doc["coverage"]


class TestSanitizeContract:
    def test_paths1_strips_lane_kills(self):
        cfg = _cfg(1)
        shape = _Shape(cfg)
        schedule = _sanitize(cfg, shape, replace(
            _clean_schedule(cfg, shape), lane_kills=((0, 0.01, 0.02),)))
        assert schedule.lane_kills == ()

    def test_k_lanes_force_leader_sources(self):
        cfg = _cfg(2)
        shape = _Shape(cfg)
        schedule = _sanitize(cfg, shape, FuzzSchedule(
            trial_seed=1, sources=(shape.initial[2], shape.initial[3]),
            offsets=(0.0, 0.001), incidents=(), churn=()))
        assert schedule.sources == (shape.leader, shape.leader)

    def test_never_kills_every_lane(self):
        cfg = _cfg(2)
        shape = _Shape(cfg)
        schedule = _sanitize(cfg, shape, replace(
            _clean_schedule(cfg, shape),
            lane_kills=((0, 0.004, 0.02), (1, 0.005, 0.02),
                        (0, 0.006, 0.02))))
        assert len(schedule.lane_kills) <= cfg.paths - 1
        lanes = [k[0] for k in schedule.lane_kills]
        assert len(lanes) == len(set(lanes))


class TestCorpusStability:
    def test_empty_lane_kills_omitted_from_dict(self):
        """Pre-lane corpus entries keep their content hashes."""
        cfg = _cfg(1)
        shape = _Shape(cfg)
        schedule = _clean_schedule(cfg, shape)
        d = schedule.to_dict()
        assert "lane_kills" not in d
        assert FuzzSchedule.from_dict(d) == schedule

    def test_lane_kills_round_trip(self):
        cfg = _cfg(2)
        shape = _Shape(cfg)
        schedule = _sanitize(cfg, shape, replace(
            _clean_schedule(cfg, shape), lane_kills=((1, 0.004, 0.02),)))
        again = FuzzSchedule.from_dict(schedule.to_dict())
        assert again == schedule
        assert again.content_hash() == schedule.content_hash()

    def test_lane_kill_mutation_inert_at_paths1(self):
        cfg = _cfg(1)
        shape = _Shape(cfg)
        assert "lane-kill" in MUTATIONS
        schedule = generate_fuzz_schedule(cfg, random.Random(3), shape)
        for seed in range(60):
            mutated = mutate_schedule(cfg, schedule, random.Random(seed),
                                      shape)
            assert mutated.lane_kills == ()

    def test_lane_kill_mutation_fires_at_k2(self):
        cfg = _cfg(2)
        shape = _Shape(cfg)
        schedule = _clean_schedule(cfg, shape)
        hit = False
        for seed in range(60):
            mutated = mutate_schedule(cfg, schedule, random.Random(seed),
                                      shape)
            if mutated.lane_kills:
                hit = True
                lane, at, repair_at = mutated.lane_kills[0]
                assert 0 <= lane < cfg.paths
                assert 0.0 <= at <= 0.55 * cfg.horizon + 1e-12
                assert at < repair_at <= 0.75 * cfg.horizon + 1e-12
        assert hit
