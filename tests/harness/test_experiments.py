"""Integration smoke tests of the heavier experiment functions.

Each runs in its quick configuration and asserts the paper's
qualitative claim (who wins, direction of effects) — the quantitative
bands live in the benchmarks and EXPERIMENTS.md.
"""

import pytest

pytestmark = pytest.mark.slow  # Tier-2: each experiment replays a full figure's sweep.

from repro.harness import ablations, experiments


class TestTestbedExperiments:
    def test_fig8_bands(self):
        res = experiments.fig8_bcast_small()
        for row in res.rows:
            assert row["speedup_vs_bt"] > 1.8
            assert row["speedup_vs_chain"] > 2.3

    def test_fig9_bands(self):
        res = experiments.fig9_bcast_large()
        for row in res.rows:
            assert 1.3 <= row["speedup_vs_chain"] <= 3.0
            assert 1.8 <= row["speedup_vs_bt"] <= 3.2

    def test_rdmc_comparison(self):
        res = experiments.rdmc_comparison()
        rdmc_row = next(r for r in res.rows if r["scheme"] == "rdmc")
        assert 1.2 <= rdmc_row["ratio_vs_cepheus"] <= 2.0  # paper 1.43

    def test_tab1_ordering(self):
        res = experiments.tab1_storage_iops()
        iops = {r["scheme"]: r["iops_M"] for r in res.rows}
        assert iops["3-unicasts"] < 0.5 * iops["cepheus"]
        assert iops["cepheus"] > 0.9 * iops["1-unicast"]
        assert 1.0 < iops["1-unicast"] < 1.4

    def test_fig10_reductions(self):
        res = experiments.fig10_storage_latency()
        reds = res.column("reduction_vs_3uni")
        assert all(r > 0.1 for r in reds)
        assert reds[-1] > reds[0]  # gap widens with IO size


class TestSimulationExperiments:
    def test_fig12_shapes(self):
        res = experiments.fig12_large_scale(quick=True)
        small = res.rows[0]
        large = res.rows[-1]
        assert small["speedup_vs_chain"] > 20   # paper: up to 164x @512
        assert small["speedup_vs_bt"] > 3
        assert large["speedup_vs_chain"] > 1.5  # paper: 2.1x
        assert large["speedup_vs_bt"] > 3       # paper: 8.9x
        modes = set(res.column("mode"))
        assert modes == {"packet", "analytic"}

    def test_fig13_degradation_direction(self):
        # One small setup with the extreme rates only: the full quick
        # sweep lives in the fig13 benchmark, not the unit suite.
        res = experiments.fig13_loss(
            quick=True, setups=[(4, 16, 4 << 20)], rates=[0.0, 5e-4])
        ceph = [r for r in res.rows if r["scheme"] == "cepheus"]
        worst = min(r["norm_tput"] for r in ceph)
        clean = max(r["norm_tput"] for r in ceph)
        assert clean == pytest.approx(1.0)
        assert worst < 1.0  # loss visibly degrades Cepheus throughput
        # at the small scale Cepheus still beats Chain on absolute FCT
        small = [r for r in res.rows if r["scale"] == min(
            row["scale"] for row in res.rows)]
        by = {(r["scheme"], r["loss_rate"]): r["fct_ms"] for r in small}
        for rate in {r["loss_rate"] for r in small}:
            assert by[("cepheus", rate)] < by[("chain", rate)]


class TestAblations:
    def test_ack_trigger_reduces_sender_acks(self):
        res = ablations.ablation_ack_trigger()
        by = {r["variant"]: r for r in res.rows}
        assert by["with-trigger"]["sender_acks"] < \
            0.8 * by["no-trigger"]["sender_acks"]

    def test_nack_rule_prevents_intercovering_stall(self):
        res = ablations.ablation_nack_rule()
        by = {r["variant"]: r for r in res.rows}
        ok = by["with-mepsn"]
        bad = by["no-mepsn"]
        assert ok["receivers_done"] == ok["receivers_total"]
        assert bad["receivers_done"] < bad["receivers_total"]
        assert bad["delivered_frac_min"] < 1.0

    def test_retransmit_filter_counts(self):
        res = ablations.ablation_retransmit_filter()
        by = {r["variant"]: r for r in res.rows}
        assert by["with-filter"]["filtered"] > 0
        assert by["no-filter"]["filtered"] == 0
