"""Membership-churn campaigns: determinism, acceptance, self-tests."""

import json

import pytest

from repro.harness.churn import (ChurnConfig, ChurnEvent, ChurnSchedule,
                                 generate_churn_schedule, load_churn_reproducer,
                                 replay_churn_reproducer, run_churn_campaign,
                                 run_churn_trial, shrink_churn_schedule)

CFG = ChurnConfig()


class TestSchedule:
    def test_generation_is_deterministic(self):
        import random
        a = generate_churn_schedule(CFG, random.Random(5))
        b = generate_churn_schedule(CFG, random.Random(5))
        assert a == b

    def test_events_respect_pools(self):
        import random
        sched = generate_churn_schedule(CFG, random.Random(5))
        hosts = list(range(1, CFG.hosts + 1))
        initial = hosts[:CFG.initial_members]
        for ev in sched.events:
            if ev.kind == "join":
                assert ev.ip not in initial
            else:
                assert ev.ip in initial[1:]   # never the leader/source

    def test_roundtrips_through_json(self):
        import random
        sched = generate_churn_schedule(CFG, random.Random(5))
        again = ChurnSchedule.from_dict(
            json.loads(json.dumps(sched.to_dict())))
        assert again == sched


class TestCampaign:
    def test_seeded_acceptance_scenario(self):
        """Joins, a voluntary leave, and a crashed receiver during
        in-flight broadcasts: exactly-once to all final members, no
        stalled aggregates, invariants clean across epochs."""
        doc = run_churn_campaign(CFG, seed=11, trials=3, shrink=False)
        assert doc["failing_trials"] == []
        for r in doc["records"]:
            assert r["completed_messages"] == CFG.messages
            assert r["mismatched"] == []
            assert r["violations"] == []
            assert r["unpruned_crashes"] == []
            assert r["delta_failures"] == []
            # incremental deltas beat full re-registration per member
            joins = sum(1 for e in r["schedule"]["events"]
                        if e["kind"] == "join")
            if joins:
                assert r["delta_records"] / joins < r["full_records"]

    def test_campaign_is_bit_for_bit_deterministic(self):
        a = run_churn_campaign(CFG, seed=3, trials=2, shrink=False)
        b = run_churn_campaign(CFG, seed=3, trials=2, shrink=False)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_no_detector_mutation_fails(self):
        """Self-test: with the failure detector off, a crash must stall
        the group (the campaign detects real liveness bugs)."""
        cfg = ChurnConfig(mutate="no-detector")
        doc = run_churn_campaign(cfg, seed=11, trials=1, shrink=False)
        assert doc["failing_trials"] == [0]
        rec = doc["records"][0]
        assert rec["unpruned_crashes"] or \
            rec["completed_messages"] < cfg.messages


@pytest.mark.slow
class TestShrinkAndReplay:
    def test_shrinker_isolates_the_crash(self):
        import random
        cfg = ChurnConfig(mutate="no-detector")
        sched = generate_churn_schedule(cfg, random.Random(11))
        minimal = shrink_churn_schedule(cfg, sched)
        kinds = [e.kind for e in minimal.events]
        assert kinds == ["crash"]
        assert len(minimal.offsets) <= len(sched.offsets)

    def test_reproducer_roundtrip(self, tmp_path):
        cfg = ChurnConfig(mutate="no-detector")
        doc = run_churn_campaign(cfg, seed=11, trials=1, shrink=True)
        rep = doc["reproducers"][0]
        path = tmp_path / "repro.json"
        path.write_text(json.dumps(rep))
        cfg2, sched2 = load_churn_reproducer(str(path))
        assert cfg2.mutate == "no-detector"
        record = replay_churn_reproducer(str(path))
        assert record["failing"]

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError):
            load_churn_reproducer(str(path))


class TestFatTree:
    def test_fat_tree_churn_clean(self):
        cfg = ChurnConfig(topo="fat_tree", hosts=8, k=4)
        doc = run_churn_campaign(cfg, seed=11, trials=1, shrink=False)
        assert doc["failing_trials"] == []
