"""Byte-identity goldens: one quick probe per deployment mode.

Unlike ``test_golden_results`` (tolerance bands on headline metrics),
these compare the canonical :meth:`ExperimentResult.to_json` output
*byte-for-byte* against committed fixtures.  The probe rows carry raw
(unrounded) virtual-time latencies plus the cumulative simulator event
count, so any perf refactor that perturbs results — a reordered
scheduler tie, a dropped or added event, a float that shifts in the
last ulp — fails here in seconds instead of in the CI bench job.

Regenerating after an *intentional* behavior change:

    GOLDEN_BYTES_REGEN=1 PYTHONPATH=src python -m pytest \
        tests/harness/test_golden_bytes.py

and commit the updated ``tests/harness/golden_bytes/*.json`` with an
explanation of why the bytes moved.
"""

import os
from pathlib import Path

import pytest

from repro.harness.experiments import deployment_golden

FIXTURE_DIR = Path(__file__).parent / "golden_bytes"
DEPLOYMENTS = ("inline", "lookaside", "source_routed")

REGEN = os.environ.get("GOLDEN_BYTES_REGEN") == "1"


@pytest.mark.parametrize("deployment", DEPLOYMENTS)
def test_deployment_bytes_identical(deployment):
    result = deployment_golden(deployment)
    got = result.to_json() + "\n"
    path = FIXTURE_DIR / f"{deployment}.json"

    if REGEN:
        path.write_text(got)
        pytest.skip(f"regenerated {path.name}")

    assert path.exists(), (
        f"missing fixture {path}; generate with GOLDEN_BYTES_REGEN=1")
    want = path.read_text()
    if got != want:
        # byte-level mismatch: show the first diverging line for triage
        for i, (g, w) in enumerate(zip(got.splitlines(), want.splitlines())):
            if g != w:
                pytest.fail(
                    f"{deployment} golden bytes diverged at line {i + 1}:\n"
                    f"  fixture: {w!r}\n"
                    f"  current: {g!r}")
        pytest.fail(f"{deployment} golden bytes diverged in length "
                    f"({len(got)} vs {len(want)} chars)")


def test_fixtures_cover_every_deployment():
    """A new deployment mode must come with a fixture (or be added to
    DEPLOYMENTS here with one)."""
    committed = {p.stem for p in FIXTURE_DIR.glob("*.json")}
    assert committed == set(DEPLOYMENTS)
