"""Coverage-guided fuzzer: determinism, validity, oracles, self-test.

The two properties everything else depends on are pinned hard here:
(1) a fuzzing session is a pure function of (config, seed, budget,
corpus) — bit-for-bit identical documents on re-run; (2) the mutation
self-test — a deliberately seeded protocol bug behind an env flag must
be *found* and *shrunk* within a CI-sized budget, or the fuzzer is
decoration.
"""

import json
import random

import pytest

from repro.harness.fuzz import (FuzzConfig, FuzzSchedule, MUTATIONS,
                                crossover_schedules, generate_fuzz_schedule,
                                load_corpus, load_fuzz_reproducer,
                                mutate_schedule, replay_corpus,
                                replay_fuzz_reproducer, run_fuzz,
                                run_fuzz_trial, save_corpus,
                                shrink_fuzz_schedule)
from repro.harness.fuzz import _Shape

# Small-but-real: three deployments per trial, room for one incident
# and a couple of churn ops, short horizon.
QUICK = FuzzConfig(hosts=8, initial_members=6, messages=2, msg_packets=4,
                   incidents_max=1, joins_max=1, leaves_max=1,
                   horizon=0.02)


# ---------------------------------------------------------------------------
# schedules: generation, validity contract, serialization
# ---------------------------------------------------------------------------

def test_schedule_generation_is_deterministic():
    shape = _Shape(QUICK)
    s1 = generate_fuzz_schedule(QUICK, random.Random(7), shape)
    s2 = generate_fuzz_schedule(QUICK, random.Random(7), shape)
    assert s1 == s2
    assert s1.content_hash() == s2.content_hash()
    assert generate_fuzz_schedule(QUICK, random.Random(8), shape) != s1


def test_schedule_json_round_trip():
    sched = generate_fuzz_schedule(QUICK, random.Random(3))
    back = FuzzSchedule.from_dict(
        json.loads(json.dumps(sched.to_dict(), sort_keys=True)))
    assert back == sched
    assert back.content_hash() == sched.content_hash()


def _assert_valid(cfg, shape, sched):
    assert len(sched.sources) == len(sched.offsets)
    assert sched.offsets[0] == 0.0
    assert list(sched.offsets) == sorted(sched.offsets)
    protected = set(sched.sources) | {shape.leader}
    for s in sched.sources:
        assert s in shape.initial
    joiners, leavers = set(), set()
    for ev in sched.churn:
        assert 0.0 <= ev.at <= 0.6 * cfg.horizon + 1e-12
        if ev.kind == "join":
            assert ev.ip in shape.outsiders
            assert ev.ip not in joiners
            joiners.add(ev.ip)
        else:
            assert ev.kind == "leave"
            assert ev.ip in shape.initial and ev.ip not in protected
            assert ev.ip not in leavers
            leavers.add(ev.ip)
    assert len(sched.incidents) <= cfg.incidents_max
    targeted = set()
    for inc in sched.incidents:
        ident = (inc.kind, inc.target[1])
        assert ident not in targeted  # one incident per device
        targeted.add(ident)
        assert inc.at <= 0.55 * cfg.horizon + 1e-12
        assert inc.at < inc.repair_at <= 0.75 * cfg.horizon + 1e-12


def test_generated_schedules_respect_the_validity_contract():
    shape = _Shape(QUICK)
    for seed in range(40):
        sched = generate_fuzz_schedule(QUICK, random.Random(seed), shape)
        _assert_valid(QUICK, shape, sched)


def test_every_mutation_operator_preserves_validity():
    cfg = FuzzConfig(hosts=8, initial_members=6, messages=3, msg_packets=4,
                     incidents_max=2, joins_max=2, leaves_max=2,
                     horizon=0.02)
    shape = _Shape(cfg)
    sched = generate_fuzz_schedule(cfg, random.Random(1), shape)
    seen_ops = set()
    for seed in range(80):
        rng = random.Random(seed)
        # peek at the operator the mutator will draw, then rewind
        seen_ops.add(random.Random(seed).choice(MUTATIONS))
        sched2 = mutate_schedule(cfg, sched, rng, shape)
        _assert_valid(cfg, shape, sched2)
    assert seen_ops == set(MUTATIONS)  # 80 draws exercise the full menu


def test_crossover_keeps_parent_a_seed_and_plan():
    shape = _Shape(QUICK)
    a = generate_fuzz_schedule(QUICK, random.Random(1), shape)
    b = generate_fuzz_schedule(QUICK, random.Random(2), shape)
    child = crossover_schedules(QUICK, a, b, random.Random(3), shape)
    _assert_valid(QUICK, shape, child)
    assert child.trial_seed == a.trial_seed
    assert child.sources == a.sources


# ---------------------------------------------------------------------------
# trials: determinism + differential oracles on clean schedules
# ---------------------------------------------------------------------------

def test_trial_is_bit_for_bit_deterministic():
    sched = generate_fuzz_schedule(QUICK, random.Random(11))
    r1 = run_fuzz_trial(QUICK, sched)
    r2 = run_fuzz_trial(QUICK, sched)
    assert json.dumps(r1, sort_keys=True) == json.dumps(r2, sort_keys=True)


def test_clean_trial_passes_both_oracles_across_deployments():
    sched = FuzzSchedule(trial_seed=5, sources=(1, 2), offsets=(0.0, 0.005),
                         incidents=(), churn=())
    rec = run_fuzz_trial(QUICK, sched)
    assert rec["fail_reasons"] == []
    assert not rec["failing"]
    assert len(rec["deployments"]) == 3
    # the payload oracle had material to compare
    assert rec["stable_receivers"] != []
    for dep in rec["deployments"]:
        assert dep["completed"] == 2
        assert dep["source_idle"]
    # coverage spans all three deployments' stage keys
    for dep in ("inline", "lookaside", "source_routed"):
        assert any(k.startswith(f"stage/{dep}/") for k in rec["coverage"])
        assert any(k.startswith(f"trans/{dep}/") for k in rec["coverage"])


def test_churny_trial_with_incident_still_passes():
    """The hard case: schedule with failures + churn must come out clean
    on a correct implementation (recovery + MRP deltas settle in time)."""
    shape = _Shape(QUICK)
    for seed in (0, 4, 9):
        sched = generate_fuzz_schedule(QUICK, random.Random(seed), shape)
        rec = run_fuzz_trial(QUICK, sched)
        assert not rec["failing"], (seed, rec["fail_reasons"])


# ---------------------------------------------------------------------------
# the fuzz loop: determinism, admission, corpus evolution
# ---------------------------------------------------------------------------

def test_fuzz_session_is_fully_deterministic():
    d1 = run_fuzz(QUICK, seed=3, budget_trials=4)
    d2 = run_fuzz(QUICK, seed=3, budget_trials=4)
    d1.pop("_corpus"), d2.pop("_corpus")
    assert json.dumps(d1, sort_keys=True) == json.dumps(d2, sort_keys=True)


def test_fuzz_admits_on_new_coverage_only():
    doc = run_fuzz(QUICK, seed=3, budget_trials=6)
    # trial 0 starts from empty global coverage: always admitted
    assert doc["records"][0]["admitted"]
    for rec in doc["records"]:
        assert rec["admitted"] == (rec["new_coverage"] > 0)
    assert doc["corpus_size"] == len(doc["corpus_hashes"])
    assert doc["corpus_size"] == len(doc["new_corpus_entries"])
    assert doc["coverage_keys"] > 0
    assert doc["failing_trials"] == []


def test_fuzz_replays_given_corpus_first():
    shape = _Shape(QUICK)
    corpus = [generate_fuzz_schedule(QUICK, random.Random(s), shape)
              for s in (1, 2)]
    doc = run_fuzz(QUICK, seed=9, budget_trials=3, corpus=corpus)
    assert [r["origin"] for r in doc["records"][:2]] == ["corpus", "corpus"]
    assert doc["records"][0]["schedule_hash"] == corpus[0].content_hash()
    assert doc["records"][2]["origin"] in ("mutate", "crossover", "generate")


# ---------------------------------------------------------------------------
# corpus persistence + parallel replay determinism
# ---------------------------------------------------------------------------

def test_corpus_save_load_round_trip(tmp_path):
    shape = _Shape(QUICK)
    scheds = [generate_fuzz_schedule(QUICK, random.Random(s), shape)
              for s in (1, 2, 3)]
    written = save_corpus(str(tmp_path), QUICK, scheds)
    assert len(written) == 3
    # idempotent: re-saving writes nothing new
    assert save_corpus(str(tmp_path), QUICK, scheds) == []
    entries = load_corpus(str(tmp_path))
    assert {s.content_hash() for _, s in entries} \
        == {s.content_hash() for s in scheds}
    assert all(c == QUICK for c, _ in entries)


def test_corpus_replay_signature_is_jobs_independent(tmp_path):
    shape = _Shape(QUICK)
    scheds = [generate_fuzz_schedule(QUICK, random.Random(s), shape)
              for s in (1, 2)]
    save_corpus(str(tmp_path), QUICK, scheds)
    seq = replay_corpus(str(tmp_path), jobs=1)
    par = replay_corpus(str(tmp_path), jobs=2)
    assert seq["inputs"] == par["inputs"] == 2
    assert seq["coverage_signature"] == par["coverage_signature"]
    assert json.dumps(seq, sort_keys=True) == json.dumps(par, sort_keys=True)
    assert seq["failing"] == []


def test_checked_in_corpus_replays_clean_and_deterministically():
    """The committed corpus under tests/harness/corpus is a regression
    baseline: every input passes, twice, with identical signatures."""
    import os
    dirpath = os.path.join(os.path.dirname(__file__), "corpus")
    r1 = replay_corpus(dirpath)
    assert r1["inputs"] > 0
    assert r1["failing"] == []
    r2 = replay_corpus(dirpath)
    assert r1["coverage_signature"] == r2["coverage_signature"]


# ---------------------------------------------------------------------------
# mutation self-test: the fuzzer must find the seeded bug
# ---------------------------------------------------------------------------

# Leaves are what trip the seeded bug (a swallowed MRP_CONFIRM in the
# source-routed leave path), so give the generator room to draw them.
SELFTEST = FuzzConfig(hosts=8, initial_members=6, messages=3, msg_packets=6,
                      horizon=0.03, leaves_max=2)


def test_seeded_bug_is_found_and_shrunk_within_ci_budget(monkeypatch):
    monkeypatch.setenv("CEPHEUS_SEEDED_BUG", "sr-skip-leave-confirm")
    doc = run_fuzz(SELFTEST, seed=5, budget_trials=8, shrink=True)
    assert doc["failing_trials"], "fuzzer failed to find the seeded bug"
    rep = doc["reproducers"][0]
    assert any(r.startswith("delta-failure:source_routed")
               for r in rep["fail_reasons"]), rep["fail_reasons"]
    minimal = FuzzSchedule.from_dict(rep["schedule"])
    # shrinking strips everything but the triggering leave
    assert minimal.incidents == ()
    assert len(minimal.churn) == 1
    assert minimal.churn[0].kind == "leave"
    # the reproducer is standalone: re-running it still fails
    rec = run_fuzz_trial(SELFTEST, minimal)
    assert rec["failing"]


def test_seeded_bug_reproducer_passes_once_bug_is_fixed(monkeypatch):
    """Replaying the shrunk reproducer with the flag unset (the 'fixed'
    build) must come out clean — the oracle blames the bug, not the
    schedule."""
    monkeypatch.setenv("CEPHEUS_SEEDED_BUG", "sr-skip-leave-confirm")
    doc = run_fuzz(SELFTEST, seed=5, budget_trials=8, shrink=True)
    minimal = FuzzSchedule.from_dict(doc["reproducers"][0]["schedule"])
    monkeypatch.delenv("CEPHEUS_SEEDED_BUG")
    rec = run_fuzz_trial(SELFTEST, minimal)
    assert not rec["failing"], rec["fail_reasons"]


def test_seeded_bug_off_by_default():
    """Guard against the flag leaking into normal runs: the exact
    shrunk schedule passes when the env var is absent."""
    import os
    assert "CEPHEUS_SEEDED_BUG" not in os.environ


# ---------------------------------------------------------------------------
# CLI: run / replay / corpus
# ---------------------------------------------------------------------------

def test_cli_fuzz_run_replay_and_corpus(tmp_path, capsys):
    from repro.cli import main

    corpus_dir = tmp_path / "corpus"
    out = tmp_path / "session.json"
    rc = main(["fuzz", "run", "--seed", "3", "--budget-trials", "4",
               "--messages", "2", "--msg-packets", "4",
               "--horizon", "0.02", "--incidents-max", "1",
               "--corpus", str(corpus_dir), "--out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["failing_trials"] == []
    assert "_corpus" not in doc
    assert len(list(corpus_dir.glob("input-*.json"))) == doc["corpus_size"]

    rc = main(["fuzz", "corpus", "--corpus", str(corpus_dir)])
    assert rc == 0
    listing = capsys.readouterr().out
    for h in doc["corpus_hashes"]:
        assert h[:12] in listing

    replay_out = tmp_path / "replay.json"
    rc = main(["fuzz", "replay", str(corpus_dir), "--jobs", "1",
               "--out", str(replay_out)])
    assert rc == 0
    rep = json.loads(replay_out.read_text())
    assert rep["inputs"] == doc["corpus_size"]
    assert rep["failing"] == []


def test_cli_fuzz_run_packages_reproducer_on_failure(tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.setenv("CEPHEUS_SEEDED_BUG", "sr-skip-leave-confirm")
    rdir = tmp_path / "repros"
    rc = main(["fuzz", "run", "--seed", "5", "--budget-trials", "8",
               "--leaves-max", "2", "--corpus", str(tmp_path / "c"),
               "--repro-dir", str(rdir)])
    assert rc == 3  # failures found
    files = sorted(rdir.glob("*.json"))
    assert files
    cfg, sched = load_fuzz_reproducer(str(files[0]))
    assert run_fuzz_trial(cfg, sched)["failing"]
    # replaying through the CLI on the fixed build reports success
    monkeypatch.delenv("CEPHEUS_SEEDED_BUG")
    rc = main(["fuzz", "replay", str(files[0])])
    assert rc == 0
    assert not replay_fuzz_reproducer(str(files[0]))["failing"]


def test_load_fuzz_reproducer_rejects_other_json(tmp_path):
    path = tmp_path / "not_a_repro.json"
    path.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(ValueError):
        load_fuzz_reproducer(str(path))
