"""Chaos campaign runner: determinism, shrinking, reproducer round-trip."""

import json
import random

import pytest

from repro.harness.chaos import (ChaosConfig, Incident, Schedule,
                                 generate_schedule, load_reproducer,
                                 run_campaign, run_trial, shrink_schedule)

# Small-but-real: enough horizon for an incident + RTO recovery.
QUICK = ChaosConfig(hosts=4, messages=2, msg_packets=4,
                    incidents=1, horizon=0.01)


def test_schedule_generation_is_deterministic():
    s1 = generate_schedule(QUICK, random.Random(123))
    s2 = generate_schedule(QUICK, random.Random(123))
    assert s1 == s2
    s3 = generate_schedule(QUICK, random.Random(124))
    assert s3 != s1


def test_schedule_json_round_trip():
    sched = generate_schedule(QUICK, random.Random(5))
    doc = json.dumps(sched.to_dict(), sort_keys=True)
    back = Schedule.from_dict(json.loads(doc))
    assert back == sched


def test_trial_is_bit_for_bit_deterministic():
    sched = generate_schedule(QUICK, random.Random(9))
    r1 = run_trial(QUICK, sched)
    r2 = run_trial(QUICK, sched)
    assert (json.dumps(r1, sort_keys=True)
            == json.dumps(r2, sort_keys=True))


def test_trial_survives_incidents_and_delivers():
    sched = generate_schedule(QUICK, random.Random(9))
    rec = run_trial(QUICK, sched)
    assert rec["completed_messages"] == QUICK.messages
    assert rec["violations"] == []
    assert rec["delivered_all"]
    assert not rec["failing"]
    assert rec["active_failures_at_end"] == 0


def test_incident_kinds_cover_and_repair():
    """Each incident kind individually: fail + repair, clean delivery."""
    base = generate_schedule(QUICK, random.Random(1))
    kinds = {
        "host": ("host", 2),
        "switch": ("switch", "sw0"),
        "loss": ("loss", "sw0", 0.2),
    }
    for kind, target in kinds.items():
        inc = Incident(kind=kind, target=target, at=0.0005,
                       repair_at=0.003)
        sched = Schedule(trial_seed=base.trial_seed,
                         sources=base.sources, offsets=base.offsets,
                         incidents=(inc,))
        rec = run_trial(QUICK, sched)
        assert not rec["failing"], (kind, rec["violations"])


def test_mutated_trial_fails_and_shrinks_to_minimum():
    """End-to-end self-test: the psn-skip mutation must (a) be caught,
    (b) survive shrinking, and (c) shrink away all irrelevant incidents."""
    cfg = ChaosConfig(hosts=4, messages=2, msg_packets=4,
                      incidents=2, horizon=0.01, mutate="psn-skip")
    sched = generate_schedule(cfg, random.Random(3))
    rec = run_trial(cfg, sched)
    assert rec["failing"]
    assert "psn-contiguity" in {v["invariant"] for v in rec["violations"]}
    minimal = shrink_schedule(cfg, sched)
    # the mutation alone causes the failure: no incident is needed
    assert minimal.incidents == ()
    # the skip lands mid-message-2, so both messages must remain
    assert len(minimal.sources) == 2
    assert run_trial(cfg, minimal)["failing"]


def test_campaign_packages_reproducer(tmp_path):
    cfg = ChaosConfig(hosts=4, messages=2, msg_packets=4,
                      incidents=1, horizon=0.01, mutate="psn-skip")
    camp = run_campaign(cfg, seed=2, trials=1)
    assert camp["failing_trials"] == [0]
    (rep,) = camp["reproducers"]
    path = tmp_path / "repro.json"
    path.write_text(json.dumps(rep, sort_keys=True))
    cfg2, sched2 = load_reproducer(str(path))
    assert cfg2 == cfg
    assert run_trial(cfg2, sched2)["failing"]


def test_campaign_clean_when_unmutated():
    camp = run_campaign(QUICK, seed=11, trials=2)
    assert camp["failing_trials"] == []
    assert camp["reproducers"] == []


def test_load_reproducer_rejects_other_json(tmp_path):
    path = tmp_path / "not_a_repro.json"
    path.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(ValueError):
        load_reproducer(str(path))


def test_cli_chaos_run_and_replay(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "campaign.json"
    rdir = tmp_path / "repros"
    rc = main(["chaos", "run", "--seed", "2", "--trials", "1",
               "--hosts", "4", "--messages", "2", "--msg-packets", "4",
               "--incidents", "1", "--horizon", "0.01",
               "--mutate", "psn-skip",
               "--out", str(out), "--repro-dir", str(rdir)])
    assert rc == 3  # failures found
    files = sorted(rdir.glob("*.json"))
    assert len(files) == 1
    rc = main(["chaos", "replay", str(files[0])])
    assert rc == 3  # still failing (the mutation is in the config)
    doc = json.loads(out.read_text())
    assert doc["failing_trials"] == [0]


# ---------------------------------------------------------------------------
# deployment-parameterized campaigns
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("deployment", ["lookaside", "source_routed"])
def test_campaign_clean_under_alternate_deployments(deployment):
    cfg = ChaosConfig(hosts=4, messages=2, msg_packets=4,
                      incidents=1, horizon=0.01, deployment=deployment)
    camp = run_campaign(cfg, seed=7, trials=2)
    assert camp["failing_trials"] == [], camp
    assert camp["reproducers"] == []


def test_source_routed_campaign_trial_covers_sp_forward():
    """Regression: a source-routed chaos trial must actually route
    packets through the ``sp_forward`` stage — if the deployment knob
    silently fell back to inline, the header-driven path would go
    untested by every campaign."""
    from repro.check import CoverageMap

    cfg = ChaosConfig(hosts=4, messages=2, msg_packets=4,
                      incidents=1, horizon=0.01,
                      deployment="source_routed")
    sched = generate_schedule(cfg, random.Random(2))
    cov = CoverageMap()
    rec = run_trial(cfg, sched, coverage=cov)
    assert not rec["failing"], rec["violations"]
    keys = cov.to_list()
    assert any(k.startswith("stage/source_routed/accel/sp_forward/")
               for k in keys), keys
    # and none of the coverage claims a different deployment ran
    assert all("/inline/" not in k and "/lookaside/" not in k
               for k in keys)


def test_cli_chaos_run_accepts_deployment_flag(tmp_path):
    from repro.cli import main

    out = tmp_path / "campaign.json"
    rc = main(["chaos", "run", "--seed", "7", "--trials", "1",
               "--hosts", "4", "--messages", "2", "--msg-packets", "4",
               "--incidents", "1", "--horizon", "0.01",
               "--deployment", "source_routed", "--out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["config"]["deployment"] == "source_routed"
    assert doc["failing_trials"] == []
