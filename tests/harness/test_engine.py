"""The parallel experiment engine: determinism, fan-out, caching.

These tests are the specification of the tentpole guarantee: an
experiment is a pure function of (id, config, code), so serial runs,
parallel runs and cache replays must be indistinguishable at the
``ExperimentResult.to_json()`` byte level.
"""

import io
import json

import pytest

from repro.harness.cache import (ResultCache, canonical_config, code_fingerprint,
                                 config_hash)
from repro.harness.engine import execute_one, experiment_config, run_engine
from repro.harness.runner import ALL_EXPERIMENTS

#: Cheap experiments (< ~0.5 s each) exercising both the analytic and
#: packet-level paths — enough to prove the engine without tier-2 cost.
SUBSET = ["fig7b", "fig8", "abl-mem", "fig10"]


def _payloads(run):
    return [r.to_json() for r in run.results]


class TestDeterminism:
    def test_serial_matches_parallel(self):
        serial = run_engine(SUBSET, quick=True, jobs=1, stream=io.StringIO())
        for jobs in (2, 4):
            par = run_engine(SUBSET, quick=True, jobs=jobs,
                             stream=io.StringIO())
            assert _payloads(par) == _payloads(serial), \
                f"jobs={jobs} diverged from serial"

    def test_request_order_preserved(self):
        run = run_engine(list(reversed(SUBSET)), quick=True, jobs=2,
                         stream=io.StringIO())
        assert [r.exp_id for r in run.results] == list(reversed(SUBSET))
        assert list(run.entries) == list(reversed(SUBSET))

    def test_event_counts_recorded(self):
        run = run_engine(["fig8"], quick=True, jobs=1, stream=io.StringIO())
        assert run.entries["fig8"]["events"] > 0

    def test_document_shape(self):
        run = run_engine(["fig7b"], quick=True, jobs=1, stream=io.StringIO())
        doc = run.document()
        assert doc["schema"] == "cepheus-bench/v2"
        assert doc["mode"] == "quick"
        assert doc["code_fingerprint"] == code_fingerprint()
        entry = doc["experiments"]["fig7b"]
        assert set(entry) == {"wall_s", "events", "events_per_sec",
                              "cached", "rows", "metrics", "result"}
        # fig7b is analytic (0 simulator events): no throughput figure
        assert entry["events_per_sec"] is None
        # The whole document must be strict JSON.
        json.loads(json.dumps(doc, allow_nan=False))


class TestCache:
    def test_warm_cache_executes_nothing(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        calls = []
        real = ALL_EXPERIMENTS["fig7b"]
        monkeypatch.setitem(ALL_EXPERIMENTS, "fig7b",
                            lambda quick: (calls.append(1), real(quick))[1])
        cold = run_engine(["fig7b"], quick=True, jobs=1, cache=cache,
                          stream=io.StringIO())
        assert cold.executed == 1 and calls == [1]
        warm = run_engine(["fig7b"], quick=True, jobs=1, cache=cache,
                          stream=io.StringIO())
        assert warm.executed == 0 and warm.cache_hits == 1
        assert calls == [1], "warm cache must not re-run the experiment"
        assert _payloads(warm) == _payloads(cold)
        assert warm.results[0].cached and not cold.results[0].cached

    def test_quick_and_full_have_distinct_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key("fig8", experiment_config("fig8", True)) != \
            cache.key("fig8", experiment_config("fig8", False))

    def test_code_fingerprint_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_engine(["fig7b"], quick=True, jobs=1, cache=cache,
                   stream=io.StringIO())
        stale = ResultCache(tmp_path, fingerprint="different-code")
        rerun = run_engine(["fig7b"], quick=True, jobs=1, cache=stale,
                           stream=io.StringIO())
        assert rerun.executed == 1 and rerun.cache_hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("fig7b", experiment_config("fig7b", True))
        cache.root.mkdir(parents=True, exist_ok=True)
        (cache.root / f"{key}.json").write_text("{not json")
        run = run_engine(["fig7b"], quick=True, jobs=1, cache=cache,
                         stream=io.StringIO())
        assert run.executed == 1

    def test_parallel_run_populates_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_engine(["fig7b", "abl-mem"], quick=True, jobs=2, cache=cache,
                   stream=io.StringIO())
        warm = run_engine(["fig7b", "abl-mem"], quick=True, jobs=2,
                          cache=ResultCache(tmp_path), stream=io.StringIO())
        assert warm.executed == 0 and warm.cache_hits == 2


class TestCanonicalization:
    def test_canonical_config_is_order_insensitive(self):
        assert canonical_config({"b": 1, "a": 2}) == \
            canonical_config({"a": 2, "b": 1})
        assert config_hash({"b": 1, "a": 2}) == config_hash({"a": 2, "b": 1})

    def test_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_execute_one_sets_provenance(self):
        entry = execute_one("fig7b", True)
        assert entry["result"]["mode"] == "quick"
        assert entry["wall_s"] >= 0
        assert entry["cached"] is False
