"""Open-loop load generation: distributions, schedules, the driver."""

import json
import random

import pytest

from repro.harness.openloop import (
    ChurnOp, CrossOp, OpenLoopSchedule, PublishOp, ZipfSampler,
    generate_churn_stream, generate_cross_stream, generate_publish_stream,
    poisson_offsets, schedule_ops,
)
from repro.net.simulator import Simulator


class TestPoisson:
    def test_deterministic_per_seed(self):
        a = poisson_offsets(random.Random(7), 1000.0, 0.1)
        b = poisson_offsets(random.Random(7), 1000.0, 0.1)
        assert a == b

    def test_sorted_and_bounded(self):
        offs = poisson_offsets(random.Random(3), 5000.0, 0.05)
        assert offs == sorted(offs)
        assert all(0.0 < t < 0.05 for t in offs)

    def test_rate_is_roughly_honored(self):
        offs = poisson_offsets(random.Random(1), 10_000.0, 0.1)
        # Expect ~1000 arrivals; Poisson sd is ~32, allow 5 sigma.
        assert 840 <= len(offs) <= 1160

    def test_zero_rate_is_empty(self):
        assert poisson_offsets(random.Random(1), 0.0, 1.0) == []


class TestZipf:
    def test_alpha_zero_is_uniform(self):
        z = ZipfSampler(4, 0.0)
        rng = random.Random(5)
        counts = [0] * 4
        for _ in range(4000):
            counts[z.sample(rng)] += 1
        assert min(counts) > 800

    def test_skew_prefers_rank_zero(self):
        z = ZipfSampler(16, 1.2)
        rng = random.Random(5)
        counts = [0] * 16
        for _ in range(4000):
            counts[z.sample(rng)] += 1
        assert counts[0] > counts[8] > 0
        assert counts[0] > 1000

    def test_single_rank(self):
        z = ZipfSampler(1, 0.9)
        assert z.sample(random.Random(0)) == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)


class TestStreams:
    def test_publish_stream_shape(self):
        ops = generate_publish_stream(
            random.Random(2), rate=20_000, horizon=0.01, n_topics=5,
            zipf_alpha=0.9, size=4096)
        assert ops
        assert all(isinstance(o, PublishOp) for o in ops)
        assert all(0 <= o.topic < 5 and o.size == 4096 for o in ops)

    def test_churn_stream_targets(self):
        hosts = [11, 12, 13]
        ops = generate_churn_stream(
            random.Random(2), rate=5000, horizon=0.01, n_topics=3,
            hosts=hosts)
        assert ops
        assert all(o.ip in hosts and 0 <= o.topic < 3 for o in ops)

    def test_cross_stream_distinct_endpoints(self):
        ops = generate_cross_stream(
            random.Random(2), rate=5000, horizon=0.01,
            hosts=[1, 2, 3, 4], size=1024)
        assert ops
        assert all(o.src != o.dst for o in ops)

    def test_schedule_json_round_trip(self):
        rng = random.Random(9)
        sched = OpenLoopSchedule(
            trial_seed=42,
            publishes=generate_publish_stream(
                rng, rate=10_000, horizon=0.01, n_topics=4,
                zipf_alpha=0.5, size=8192),
            churn=generate_churn_stream(
                rng, rate=2000, horizon=0.01, n_topics=4,
                hosts=[5, 6, 7]),
            cross=generate_cross_stream(
                rng, rate=2000, horizon=0.01, hosts=[5, 6, 7, 8],
                size=2048),
        )
        blob = json.dumps(sched.to_dict(), sort_keys=True)
        back = OpenLoopSchedule.from_dict(json.loads(blob))
        assert back == sched
        assert json.dumps(back.to_dict(), sort_keys=True) == blob


class TestDriver:
    def test_ops_fire_at_absolute_times(self):
        sim = Simulator()
        fired = []
        ops = (CrossOp(at=0.002, src=1, dst=2, size=1),
               CrossOp(at=0.001, src=2, dst=1, size=1))
        n = schedule_ops(sim, 0.0, ops, lambda op: fired.append(
            (round(sim.now, 9), op.src)))
        assert n == 2
        sim.run()
        assert fired == [(0.001, 2), (0.002, 1)]

    def test_open_loop_does_not_wait(self):
        # Arrivals keep firing even though the handler never "completes"
        # anything — the generator is oblivious to the system's state.
        sim = Simulator()
        seen = []
        ops = tuple(ChurnOp(at=i * 1e-3, topic=0, ip=9) for i in range(5))
        schedule_ops(sim, 0.0, ops, lambda op: seen.append(sim.now))
        sim.run()
        assert len(seen) == 5
