"""BENCH documents, headline metrics, and the compare gate."""

import json

import pytest

from repro.harness import bench
from repro.harness.report import ExperimentResult


def _doc(metrics_by_exp):
    return {
        "schema": bench.SCHEMA,
        "mode": "quick",
        "jobs": 1,
        "code_fingerprint": "f" * 64,
        "total_wall_s": 1.0,
        "experiments": {
            exp: {"wall_s": 0.1, "events": 10, "cached": False,
                  "rows": 1, "metrics": dict(metrics),
                  "result": {"exp_id": exp, "title": exp, "paper_claim": "",
                             "notes": "", "mode": "quick", "headers": [],
                             "rows": []}}
            for exp, metrics in metrics_by_exp.items()
        },
    }


class TestHeadlineMetrics:
    def test_numeric_columns_get_means(self):
        res = ExperimentResult("e", "t", ["size", "jct", "speedup"])
        res.rows.append({"size": "64B", "jct": 1.0, "speedup": 2.0})
        res.rows.append({"size": "1MB", "jct": 3.0, "speedup": 4.0})
        m = bench.headline_metrics(res)
        assert m == {"rows": 2.0, "mean_jct": 2.0, "mean_speedup": 3.0}

    def test_non_numeric_and_bool_columns_skipped(self):
        res = ExperimentResult("e", "t", ["name", "flag", "x"])
        res.rows.append({"name": "a", "flag": True, "x": 1})
        m = bench.headline_metrics(res)
        assert set(m) == {"rows", "mean_x"}

    def test_nonfinite_mean_dropped(self):
        res = ExperimentResult("e", "t", ["x"])
        res.rows.append({"x": float("nan")})
        assert set(bench.headline_metrics(res)) == {"rows"}

    def test_empty_table(self):
        assert bench.headline_metrics(
            ExperimentResult("e", "t", ["x"])) == {"rows": 0.0}


class TestCompare:
    def test_identical_documents_pass(self):
        doc = _doc({"fig8": {"mean_speedup": 2.5, "rows": 4.0}})
        comp = bench.compare(doc, doc)
        assert comp.ok and not comp.regressions

    def test_within_tolerance_passes(self):
        base = _doc({"fig8": {"mean_speedup": 2.5}})
        cur = _doc({"fig8": {"mean_speedup": 2.55}})  # 2% drift, 8% default
        assert bench.compare(cur, base).ok

    def test_beyond_tolerance_fails(self):
        base = _doc({"fig8": {"mean_speedup": 2.5}})
        cur = _doc({"fig8": {"mean_speedup": 3.0}})  # 20% drift
        comp = bench.compare(cur, base)
        assert not comp.ok
        (delta,) = comp.regressions
        assert delta.name == "fig8.mean_speedup"
        assert delta.status == "regressed"
        assert "FAIL fig8.mean_speedup" in comp.format()

    def test_per_metric_tolerance_override(self):
        base = _doc({"fig8": {"mean_speedup": 2.5}})
        cur = _doc({"fig8": {"mean_speedup": 3.0}})
        tol = {"default_rel_tol": 0.08, "default_abs_tol": 1e-9,
               "metrics": {"fig8.*": 0.5}}
        assert bench.compare(cur, base, tol).ok
        tight = {"default_rel_tol": 0.5, "default_abs_tol": 1e-9,
                 "metrics": {"fig8.mean_speedup": 0.01, "fig8.*": 0.9}}
        # Longest (most specific) pattern wins over the glob.
        assert not bench.compare(cur, base, tight).ok

    def test_missing_experiment_fails(self):
        base = _doc({"fig8": {"mean_speedup": 2.5},
                     "fig9": {"mean_speedup": 2.0}})
        cur = _doc({"fig8": {"mean_speedup": 2.5}})
        comp = bench.compare(cur, base)
        assert not comp.ok
        assert comp.missing_experiments == ["fig9"]
        assert "fig9: experiment missing" in comp.format()

    def test_missing_metric_fails(self):
        base = _doc({"fig8": {"mean_speedup": 2.5, "mean_jct": 1.0}})
        cur = _doc({"fig8": {"mean_speedup": 2.5}})
        comp = bench.compare(cur, base)
        assert not comp.ok
        assert comp.regressions[0].status == "missing"

    def test_new_experiment_and_metric_are_notes_not_failures(self):
        base = _doc({"fig8": {"mean_speedup": 2.5}})
        cur = _doc({"fig8": {"mean_speedup": 2.5, "mean_new": 1.0},
                    "fig99": {"mean_x": 1.0}})
        comp = bench.compare(cur, base)
        assert comp.ok
        assert comp.added_experiments == ["fig99"]

    def test_zero_baseline_uses_absolute_floor(self):
        base = _doc({"fig8": {"mean_residual": 0.0}})
        assert bench.compare(_doc({"fig8": {"mean_residual": 0.0}}),
                             base).ok
        assert not bench.compare(_doc({"fig8": {"mean_residual": 0.5}}),
                                 base).ok

    def test_events_not_compared_by_default(self):
        base = _doc({"fig8": {"mean_speedup": 2.5}})
        cur = _doc({"fig8": {"mean_speedup": 2.5}})
        cur["experiments"]["fig8"]["events"] = 99999
        assert bench.compare(cur, base).ok

    def test_check_events_requires_exact_match(self):
        base = _doc({"fig8": {"mean_speedup": 2.5}})
        same = _doc({"fig8": {"mean_speedup": 2.5}})
        assert bench.compare(same, base, check_events=True).ok
        drift = _doc({"fig8": {"mean_speedup": 2.5}})
        drift["experiments"]["fig8"]["events"] = 11  # baseline is 10
        comp = bench.compare(drift, base, check_events=True)
        assert not comp.ok
        (delta,) = comp.regressions
        assert delta.name == "fig8.events"

    def test_check_events_honors_tolerance_pattern(self):
        base = _doc({"fig8": {"mean_speedup": 2.5}})
        drift = _doc({"fig8": {"mean_speedup": 2.5}})
        drift["experiments"]["fig8"]["events"] = 11
        tol = {"metrics": {"fig8.events": 0.2}}
        assert bench.compare(drift, base, tol, check_events=True).ok

    def test_wall_drift_is_one_sided(self):
        base = _doc({"fig8": {"mean_speedup": 2.5}})  # total_wall_s 1.0
        slower = _doc({"fig8": {"mean_speedup": 2.5}})
        slower["total_wall_s"] = 1.2
        faster = _doc({"fig8": {"mean_speedup": 2.5}})
        faster["total_wall_s"] = 0.3  # 70% faster: never a failure
        assert bench.compare(slower, base).ok  # off by default
        comp = bench.compare(slower, base, max_wall_drift=0.10)
        assert not comp.ok
        (delta,) = comp.regressions
        assert delta.name == "total_wall_s"
        assert bench.compare(slower, base, max_wall_drift=0.25).ok
        assert bench.compare(faster, base, max_wall_drift=0.10).ok

    def test_min_events_per_sec_floor(self):
        """Opt-in absolute throughput floors, judged on the current
        document alone (the baseline carries no rate information)."""
        base = _doc({"fig11": {"mean_gflops": 1.0}})
        cur = _doc({"fig11": {"mean_gflops": 1.0}})
        cur["experiments"]["fig11"]["events_per_sec"] = 200000.0
        assert bench.compare(cur, base).ok  # off by default
        assert bench.compare(
            cur, base, min_events_per_sec={"fig11": 150000.0}).ok
        comp = bench.compare(
            cur, base, min_events_per_sec={"fig11": 250000.0})
        assert not comp.ok
        (delta,) = comp.regressions
        assert delta.name == "fig11.events_per_sec"
        assert delta.status == "regressed"
        assert "FAIL fig11.events_per_sec" in comp.format()

    def test_min_events_per_sec_cached_entry_fails(self):
        """A cache hit has no measured throughput: the floor cannot be
        attested, so it fails as missing instead of silently passing."""
        base = _doc({"fig11": {"mean_gflops": 1.0}})
        cur = _doc({"fig11": {"mean_gflops": 1.0}})
        cur["experiments"]["fig11"]["cached"] = True
        cur["experiments"]["fig11"]["events_per_sec"] = None
        comp = bench.compare(cur, base,
                             min_events_per_sec={"fig11": 150000.0})
        assert not comp.ok
        (delta,) = comp.regressions
        assert delta.status == "missing"

    def test_min_events_per_sec_absent_experiment_fails(self):
        base = _doc({"fig8": {"mean_speedup": 2.5}})
        cur = _doc({"fig8": {"mean_speedup": 2.5}})
        comp = bench.compare(cur, base,
                             min_events_per_sec={"fig11": 150000.0})
        assert not comp.ok
        (delta,) = comp.regressions
        assert delta.name == "fig11.events_per_sec"
        assert delta.status == "missing"

    def test_schema_guard(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "other"}))
        with pytest.raises(ValueError):
            bench.load_document(str(path))

    def test_v1_documents_still_load(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": "cepheus-bench/v1",
                                    "experiments": {}}))
        assert bench.load_document(str(path))["schema"] == "cepheus-bench/v1"

    def test_events_per_sec_is_informational(self, capsys):
        base = _doc({"fig8": {"mean_speedup": 2.5}})
        base["events_per_sec"] = 1000.0
        cur = _doc({"fig8": {"mean_speedup": 2.5}})
        cur["events_per_sec"] = 500.0  # 2x slower: still not a failure
        comp = bench.compare(cur, base)
        assert comp.ok
        assert any("events_per_sec" in n for n in comp.throughput_notes)
        assert "informational" in comp.format()


class TestThroughputFields:
    def _result(self, cached=False):
        res = ExperimentResult("e", "t", ["x"])
        res.rows.append({"x": 1.0})
        res.cached = cached
        return res

    def test_make_entry_computes_rate(self):
        entry = bench.make_entry(self._result(), wall_s=2.0, events=1000)
        assert entry["events_per_sec"] == 500.0

    def test_cached_entry_has_no_rate(self):
        entry = bench.make_entry(self._result(cached=True),
                                 wall_s=0.001, events=1000)
        assert entry["events_per_sec"] is None

    def test_document_aggregates_uncached_only(self):
        live = bench.make_entry(self._result(), wall_s=2.0, events=1000)
        hot = bench.make_entry(self._result(cached=True),
                               wall_s=0.001, events=9999)
        doc = bench.make_document({"a": live, "b": hot}, mode="quick",
                                  jobs=1, fingerprint="f" * 64,
                                  total_wall_s=2.0)
        assert doc["schema"] == bench.SCHEMA == "cepheus-bench/v2"
        assert doc["events_per_sec"] == 500.0


class TestBenchCli:
    def _emit(self, tmp_path, name="A.json"):
        from repro.cli import main
        out = tmp_path / name
        assert main(["bench", "emit", "--only", "fig7b,abl-mem",
                     "--no-cache", "--out", str(out)]) == 0
        return out

    def test_emit_then_compare_self_passes(self, tmp_path, capsys):
        out = self._emit(tmp_path)
        from repro.cli import main
        assert main(["bench", "compare", str(out), str(out)]) == 0
        assert "no regressions" in capsys.readouterr().err

    def test_compare_detects_drift(self, tmp_path, capsys):
        out = self._emit(tmp_path)
        doc = json.loads(out.read_text())
        doc["experiments"]["fig7b"]["metrics"]["mean_total_MB"] *= 2
        drifted = tmp_path / "B.json"
        drifted.write_text(json.dumps(doc))
        from repro.cli import main
        assert main(["bench", "compare", str(drifted), str(out)]) == 1
        assert "FAIL fig7b.mean_total_MB" in capsys.readouterr().out

    def test_compare_min_events_per_sec_flag(self, tmp_path, capsys):
        # fig8 executes real simulator events, so its uncached entry
        # carries a measured positive rate (fig7b is analytic and would
        # always read as missing).
        from repro.cli import main
        out = tmp_path / "fig8.json"
        assert main(["bench", "emit", "--only", "fig8",
                     "--no-cache", "--out", str(out)]) == 0
        assert main(["bench", "compare", str(out), str(out),
                     "--min-events-per-sec", "fig8=1"]) == 0
        assert main(["bench", "compare", str(out), str(out),
                     "--min-events-per-sec", "fig8=1e15"]) == 1
        assert "FAIL fig8.events_per_sec" in capsys.readouterr().out

    def test_compare_min_events_per_sec_bad_spec(self, tmp_path, capsys):
        out = self._emit(tmp_path)
        from repro.cli import main
        assert main(["bench", "compare", str(out), str(out),
                     "--min-events-per-sec", "fig7b"]) == 2
        assert "bad --min-events-per-sec" in capsys.readouterr().err

    def test_compare_missing_file_errors(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["bench", "compare", str(tmp_path / "nope.json"),
                     str(tmp_path / "nope.json")]) == 2

    def test_emit_unknown_experiment_errors(self, tmp_path):
        from repro.cli import main
        assert main(["bench", "emit", "--only", "fig99",
                     "--out", str(tmp_path / "x.json")]) == 2

    def test_emit_uses_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        from repro.cli import main
        assert main(["bench", "emit", "--only", "fig7b",
                     "--cache-dir", str(tmp_path / "c"),
                     "--out", str(tmp_path / "a.json")]) == 0
        assert main(["bench", "emit", "--only", "fig7b",
                     "--cache-dir", str(tmp_path / "c"),
                     "--out", str(tmp_path / "b.json")]) == 0
        assert "1 cached" in capsys.readouterr().err
        a = json.loads((tmp_path / "a.json").read_text())
        b = json.loads((tmp_path / "b.json").read_text())
        assert a["experiments"]["fig7b"]["result"] == \
            b["experiments"]["fig7b"]["result"]
        assert b["experiments"]["fig7b"]["cached"] is True

    def test_tolerances_file_respected(self, tmp_path, capsys):
        out = self._emit(tmp_path)
        doc = json.loads(out.read_text())
        doc["experiments"]["fig7b"]["metrics"]["mean_total_MB"] *= 1.2
        drifted = tmp_path / "B.json"
        drifted.write_text(json.dumps(doc))
        lax = tmp_path / "tol.json"
        lax.write_text(json.dumps({"default_rel_tol": 0.5}))
        from repro.cli import main
        assert main(["bench", "compare", str(drifted), str(out),
                     "--tolerances", str(lax)]) == 0
