"""Workload generation: distributions, arrivals, replay."""

import random

import pytest

from repro.apps import Cluster
from repro.collectives import CepheusBcast, ChainBcast
from repro.errors import ConfigurationError
from repro.harness.workloads import (DNN_UPDATES, MIXED, QUERY,
                                     STORAGE_REPLICATION, MulticastWorkload,
                                     PoissonArrivals, SizeDistribution)


class TestSizeDistribution:
    def test_samples_within_knot_range(self):
        rng = random.Random(0)
        for dist in (QUERY, STORAGE_REPLICATION, DNN_UPDATES, MIXED):
            lo, hi = dist._sizes[0], dist._sizes[-1]
            for _ in range(500):
                assert lo <= dist.sample(rng) <= hi

    def test_deterministic_given_seed(self):
        a = [QUERY.sample(random.Random(7)) for _ in range(10)]
        b = [QUERY.sample(random.Random(7)) for _ in range(10)]
        assert a == b

    def test_means_ordered_by_workload_class(self):
        assert QUERY.mean() < STORAGE_REPLICATION.mean() < DNN_UPDATES.mean()

    def test_mixed_is_heavy_tailed(self):
        rng = random.Random(3)
        samples = sorted(MIXED.sample(rng) for _ in range(5000))
        median = samples[len(samples) // 2]
        p99 = samples[int(0.99 * len(samples))]
        assert p99 > 100 * median

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SizeDistribution([(64, 0.0)])
        with pytest.raises(ConfigurationError):
            SizeDistribution([(64, 0.0), (32, 1.0)])
        with pytest.raises(ConfigurationError):
            SizeDistribution([(64, 0.0), (128, 0.9)])
        with pytest.raises(ConfigurationError):
            SizeDistribution([(-1, 0.0), (128, 1.0)])


class TestPoissonArrivals:
    def test_rate_roughly_respected(self):
        rng = random.Random(1)
        times = PoissonArrivals(10_000).times(2000, rng)
        assert times == sorted(times)
        mean_gap = times[-1] / len(times)
        assert 0.8e-4 < mean_gap < 1.2e-4

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0)


class TestMulticastWorkload:
    def test_schedule_reproducible(self):
        w1 = MulticastWorkload(QUERY, PoissonArrivals(1e5), 20, seed=5)
        w2 = MulticastWorkload(QUERY, PoissonArrivals(1e5), 20, seed=5)
        assert w1.schedule == w2.schedule

    def test_replay_collects_fcts(self):
        cl = Cluster.testbed(4)
        w = MulticastWorkload(QUERY, PoissonArrivals(2e5), 30, seed=2)
        res = w.run(cl, cl.host_ips, CepheusBcast)
        assert len(res.fcts) == 30
        assert res.percentile(50) > 0
        assert res.percentile(99) >= res.percentile(50)

    def test_cepheus_beats_chain_across_the_mix(self):
        w = MulticastWorkload(MIXED, PoissonArrivals(5e4), 25, seed=4)
        cl1, cl2 = Cluster.testbed(4), Cluster.testbed(4)
        ceph = w.run(cl1, cl1.host_ips, CepheusBcast)
        chain = w.run(cl2, cl2.host_ips, ChainBcast, slices=4)
        assert ceph.percentile(50) < chain.percentile(50)
        assert ceph.percentile(99) < chain.percentile(99)

    def test_small_large_split(self):
        cl = Cluster.testbed(4)
        w = MulticastWorkload(MIXED, PoissonArrivals(1e5), 40, seed=9)
        res = w.run(cl, cl.host_ips, CepheusBcast)
        small, large = res.small_large_split()
        assert len(small) + len(large) == 40
