"""CepheusFabric: deployment, group lifecycle, partial acceleration."""

import pytest

from repro.apps import Cluster
from repro.core.fabric import CepheusFabric
from repro.errors import GroupError, RegistrationError
from repro.net import Simulator, fat_tree


class TestDeployment:
    def test_accelerator_on_every_switch(self):
        cl = Cluster.fat_tree_cluster(4)
        assert len(cl.fabric.accelerators) == 20
        assert all(sw.accelerator is not None for sw in cl.topo.switches)

    def test_partial_deployment_predicate(self):
        sim = Simulator()
        topo = fat_tree(sim, 4)
        fabric = CepheusFabric(topo, accelerated=lambda sw: sw.layer != "core")
        assert len(fabric.accelerators) == 16
        cores = topo.switches_in_layer("core")
        assert all(sw.accelerator is None for sw in cores)

    def test_agents_on_every_host(self):
        cl = Cluster.testbed(4)
        assert set(cl.fabric.agents) == {1, 2, 3, 4}


class TestGroupLifecycle:
    def test_mcstids_unique(self, testbed8):
        ids = set()
        for i in range(5):
            qps = {ip: testbed8.ctx(ip).create_qp() for ip in (1, 2)}
            g = testbed8.fabric.create_group(qps)
            ids.add(g.mcst_id)
        assert len(ids) == 5

    def test_group_needs_two_members(self, testbed):
        qp = testbed.ctx(1).create_qp()
        with pytest.raises(GroupError):
            testbed.fabric.create_group({1: qp})

    def test_leader_must_be_member(self, testbed):
        qps = {ip: testbed.ctx(ip).create_qp() for ip in (1, 2)}
        with pytest.raises(GroupError):
            testbed.fabric.create_group(qps, leader_ip=3)

    def test_virtual_connect_applied(self, testbed):
        from repro import constants
        qps = {ip: testbed.ctx(ip).create_qp() for ip in (1, 2, 3)}
        g = testbed.fabric.create_group(qps)
        for qp in qps.values():
            assert qp.dst_ip == g.mcst_id
            assert qp.dst_qp == constants.VIRTUAL_DST_QP

    def test_mdt_switches_lists_footprint(self):
        cl = Cluster.fat_tree_cluster(4)
        qps = {ip: cl.ctx(ip).create_qp() for ip in (1, 2)}
        g = cl.fabric.create_group(qps, leader_ip=1)
        cl.fabric.register_sync(g)
        names = {a.switch.name for a in cl.fabric.mdt_switches(g.mcst_id)}
        assert names == {"edge0_0"}  # both hosts share one rack

    def test_total_mft_memory_grows_with_groups(self, testbed):
        base = testbed.fabric.total_mft_memory()
        qps = {ip: testbed.ctx(ip).create_qp() for ip in (1, 2, 3)}
        g = testbed.fabric.create_group(qps)
        testbed.fabric.register_sync(g)
        assert testbed.fabric.total_mft_memory() > base


class TestRegisterSync:
    def test_failure_surfaces_as_exception(self, testbed):
        qps = {ip: testbed.ctx(ip).create_qp() for ip in (1, 2)}
        g = testbed.fabric.create_group(qps, leader_ip=1)
        testbed.topo.nic(2).control_handler = None  # member unreachable
        with pytest.raises(RegistrationError):
            testbed.fabric.register_sync(g, timeout=1e-3)

    def test_sequential_registrations(self, testbed8):
        for leader in (1, 3, 5):
            members = {ip: testbed8.ctx(ip).create_qp()
                       for ip in (leader, leader + 1)}
            g = testbed8.fabric.create_group(members, leader_ip=leader)
            testbed8.fabric.register_sync(g)
            assert g.registered
