"""MulticastGroup + McstID allocation unit tests."""

import pytest

from repro import constants
from repro.core.group import McstIdAllocator, MemberRecord, MulticastGroup
from repro.errors import GroupError
from repro.net import Simulator, star
from repro.transport.verbs import VerbsContext


def _qps(n=4):
    sim = Simulator()
    topo = star(sim, n)
    ctxs = {ip: VerbsContext(sim, topo.nic(ip)) for ip in topo.host_ips}
    return {ip: ctxs[ip].create_qp() for ip in topo.host_ips}


class TestAllocator:
    def test_ids_in_reserved_range(self):
        alloc = McstIdAllocator()
        for _ in range(10):
            gid = alloc.allocate()
            assert gid >= constants.MCSTID_BASE

    def test_ids_unique_and_monotonic(self):
        alloc = McstIdAllocator()
        ids = [alloc.allocate() for _ in range(100)]
        assert ids == sorted(set(ids))

    def test_exhaustion_raises(self):
        alloc = McstIdAllocator(capacity=3)
        for _ in range(3):
            alloc.allocate()
        with pytest.raises(GroupError, match="exhausted"):
            alloc.allocate()

    def test_release_recycles_lowest_first(self):
        alloc = McstIdAllocator()
        a, b, c = alloc.allocate(), alloc.allocate(), alloc.allocate()
        alloc.release(c)
        alloc.release(a)
        assert alloc.allocate() == a   # lowest recycled id wins
        assert alloc.allocate() == c
        assert alloc.live_count == 3

    def test_release_unblocks_exhaustion(self):
        alloc = McstIdAllocator(capacity=1)
        gid = alloc.allocate()
        with pytest.raises(GroupError):
            alloc.allocate()
        alloc.release(gid)
        assert alloc.allocate() == gid

    def test_double_release_rejected(self):
        alloc = McstIdAllocator()
        gid = alloc.allocate()
        alloc.release(gid)
        with pytest.raises(GroupError, match="double release"):
            alloc.release(gid)

    def test_release_of_never_allocated_rejected(self):
        alloc = McstIdAllocator()
        with pytest.raises(GroupError):
            alloc.release(constants.MCSTID_BASE + 7)


class TestMembership:
    def test_leader_defaults_to_first(self):
        qps = _qps()
        g = MulticastGroup(constants.MCSTID_BASE, qps)
        assert g.leader_ip == next(iter(qps))
        assert g.current_source == g.leader_ip

    def test_explicit_leader(self):
        qps = _qps()
        g = MulticastGroup(constants.MCSTID_BASE, qps, leader_ip=3)
        assert g.leader_ip == 3

    def test_single_member_rejected(self):
        qps = _qps(2)
        with pytest.raises(GroupError):
            MulticastGroup(constants.MCSTID_BASE, {1: qps[1]})

    def test_foreign_leader_rejected(self):
        qps = _qps()
        with pytest.raises(GroupError):
            MulticastGroup(constants.MCSTID_BASE, qps, leader_ip=99)

    def test_receivers_excludes_source(self):
        qps = _qps()
        g = MulticastGroup(constants.MCSTID_BASE, qps)
        assert set(g.receivers()) == {2, 3, 4}
        g.current_source = 3
        assert set(g.receivers()) == {1, 2, 4}

    def test_qp_of_unknown(self):
        qps = _qps()
        g = MulticastGroup(constants.MCSTID_BASE, qps)
        with pytest.raises(GroupError):
            g.qp_of(77)

    def test_size(self):
        g = MulticastGroup(constants.MCSTID_BASE, _qps(3))
        assert g.size == 3


class TestMemberRecords:
    def test_records_sorted_and_complete(self):
        qps = _qps()
        g = MulticastGroup(constants.MCSTID_BASE, qps,
                           mr_info={2: (0x1000, 0x77)})
        recs = g.member_records()
        assert [r.ip for r in recs] == [1, 2, 3, 4]  # leader included
        by_ip = {r.ip: r for r in recs}
        assert by_ip[2].vaddr == 0x1000 and by_ip[2].rkey == 0x77
        assert by_ip[3].vaddr == 0 and by_ip[3].rkey == 0
        for ip, r in by_ip.items():
            assert r.qpn == qps[ip].qpn

    def test_records_are_frozen(self):
        rec = MemberRecord(ip=1, qpn=0x100)
        with pytest.raises(AttributeError):
            rec.ip = 2

    def test_connect_virtual_points_all_members(self):
        qps = _qps()
        g = MulticastGroup(constants.MCSTID_BASE + 5, qps)
        g.connect_virtual()
        for qp in qps.values():
            assert qp.dst_ip == constants.MCSTID_BASE + 5
            assert qp.dst_qp == constants.VIRTUAL_DST_QP
