"""k-lane group lifecycle: family allocation, teardown, ID recycling.

Regression coverage for the per-lane unregister path: a k-lane group
must retire *every* lane's MFT, every lane's residual source-routing
rules (each lane compiles its own header), and release the whole
McstID family — tearing down lane 0 alone leaks k-1 ids and their
switch state, which a register/unregister churn loop turns into
range exhaustion.
"""

import pytest

from repro.apps import Cluster
from repro.core.accelerator import AcceleratorConfig
from repro.errors import GroupError


def _cluster(deployment="inline"):
    return Cluster.fat_tree_cluster(
        4, accel_config=AcceleratorConfig(deployment=deployment))


def _lane_group(cl, paths, nmembers=4):
    members = cl.topo.host_ips[:nmembers]
    lane_members = [{ip: cl.ctx(ip).create_qp() for ip in members}
                    for _ in range(paths)]
    return cl.fabric.create_group(lane_members[0], leader_ip=members[0],
                                  lane_members=lane_members)


class TestFamilyAllocation:
    def test_family_ids_are_unique(self):
        cl = _cluster()
        group = _lane_group(cl, 3)
        assert len(set(group.lane_ids)) == 3
        assert group.lane_ids[0] == group.mcst_id

    def test_every_lane_id_resolves_to_the_group(self):
        cl = _cluster()
        group = _lane_group(cl, 3)
        for lane_id in group.lane_ids:
            assert cl.fabric.groups[lane_id] is group


class TestFamilyTeardown:
    @pytest.mark.parametrize("deployment",
                             ("inline", "lookaside", "source_routed"))
    def test_unregister_retires_every_lane(self, deployment):
        cl = _cluster(deployment)
        fabric = cl.fabric
        group = _lane_group(cl, 3)
        fabric.register_sync(group)
        lane_ids = list(group.lane_ids)
        # every lane compiled an MFT on at least one switch
        assert any(accel.table.get(gid) is not None
                   for gid in lane_ids
                   for accel in fabric.accelerators.values())
        fabric.unregister(group)
        for gid in lane_ids:
            assert gid not in fabric.groups
            for accel in fabric.accelerators.values():
                assert accel.table.get(gid) is None
        assert fabric.alloc.live_count == 0

    def test_unregister_releases_per_lane_sr_state(self):
        """The regression: lanes 1..k-1 compiled their own headers, so
        their residual rules must be released too — not just lane 0's."""
        cl = _cluster("source_routed")
        fabric = cl.fabric
        group = _lane_group(cl, 3)
        fabric.register_sync(group)
        sr = fabric.source_routing
        assert set(group.lane_ids) <= set(sr._states)
        fabric.unregister(group)
        for gid in group.lane_ids:
            assert gid not in sr._states

    def test_mcst_id_family_recycles(self):
        """Register/unregister churn with k>1 must not leak ids."""
        cl = _cluster()
        fabric = cl.fabric
        first = None
        for _ in range(5):
            group = _lane_group(cl, 4)
            fabric.register_sync(group)
            ids = set(group.lane_ids)
            if first is None:
                first = ids
            else:
                assert ids == first  # recycled, not freshly allocated
            fabric.unregister(group)
            assert fabric.alloc.live_count == 0

    def test_double_release_is_rejected(self):
        cl = _cluster()
        group = _lane_group(cl, 2)
        cl.fabric.unregister(group)
        with pytest.raises(GroupError):
            cl.fabric.alloc.release(group.lane_ids[1])
