"""Safeguard fallback (§V-D): registration failure + goodput collapse."""

import pytest

from repro import constants
from repro.apps import Cluster
from repro.collectives import CepheusBcast, ChainBcast
from repro.core.accelerator import AcceleratorConfig
from repro.core.fallback import SafeguardMonitor


class TestMonitor:
    def _transfer(self, loss=0.0):
        cl = Cluster.testbed(2)
        cl.topo.set_loss_rate(loss)
        qa = cl.qp_to(1, 2)
        return cl, qa

    def test_healthy_transfer_never_trips(self):
        cl, qa = self._transfer()
        tripped = []
        mon = SafeguardMonitor(cl.sim, qa, expected_bps=90e9,
                               on_fallback=tripped.append)
        qa.post_send(32 << 20)
        mon.start()
        cl.run()
        assert tripped == [] and not mon.triggered

    def test_collapsed_goodput_trips(self):
        """A catastrophic loss rate starves snd_una: the watchdog fires."""
        cl, qa = self._transfer(loss=0.4)
        tripped = []
        mon = SafeguardMonitor(cl.sim, qa, expected_bps=90e9,
                               window=200e-6,
                               on_fallback=tripped.append)
        qa.post_send(32 << 20)
        mon.start()
        cl.run(until=20e-3)
        assert mon.triggered
        assert len(tripped) == 1
        assert "Gbps" in tripped[0]

    def test_trip_idempotent(self):
        cl, qa = self._transfer()
        count = []
        mon = SafeguardMonitor(cl.sim, qa, expected_bps=90e9,
                               on_fallback=count.append)
        mon.trip("first")
        mon.trip("second")
        assert count == ["first"]
        assert mon.trigger_reason == "first"

    def test_monitor_stands_down_when_idle(self):
        cl, qa = self._transfer()
        mon = SafeguardMonitor(cl.sim, qa, expected_bps=90e9)
        qa.post_send(4096)
        mon.start()
        cl.run()
        assert cl.sim.peek_next_time() is None  # no orphaned timers

    def test_bounded_idle_rearm_then_stand_down(self):
        """The watchdog re-arms through idle windows (a gap between
        back-to-back sends is not the end of the transfer), but only
        ``idle_grace_windows`` times — then it drains for good."""
        cl, qa = self._transfer()
        mon = SafeguardMonitor(cl.sim, qa, expected_bps=90e9, window=100e-6,
                               idle_grace_windows=4)
        qa.post_send(4096)
        mon.start()
        cl.run()
        assert not mon.triggered
        assert mon._idle_windows == 4          # re-armed exactly 4 times
        assert cl.sim.peek_next_time() is None

    def test_guards_send_posted_during_idle_gap(self):
        """A transfer that starts inside the idle grace period is still
        watched: if its goodput collapses, the monitor trips — the old
        behavior stood down permanently on the first idle window."""
        cl, qa = self._transfer()
        tripped = []
        mon = SafeguardMonitor(cl.sim, qa, expected_bps=90e9, window=200e-6,
                               idle_grace_windows=50,
                               on_fallback=tripped.append)
        qa.post_send(4096)                      # finishes almost instantly
        mon.start()
        # Mid-grace: cripple the path, then post a doomed second send.
        cl.sim.schedule(1e-3, cl.topo.set_loss_rate, 0.9)
        cl.sim.schedule(1.1e-3, qa.post_send, 8 << 20)
        cl.run(until=30e-3)
        assert mon.triggered
        assert len(tripped) == 1

    def test_active_window_resets_idle_budget(self):
        """Idle windows interleaved with traffic never exhaust the
        grace budget — only a *consecutive* run of them stands down."""
        cl, qa = self._transfer()
        mon = SafeguardMonitor(cl.sim, qa, expected_bps=90e9, window=100e-6,
                               idle_grace_windows=3)
        qa.post_send(4096)
        mon.start()
        # Re-post inside the grace period a few times: each active
        # window must zero the idle counter.
        for i in range(1, 4):
            cl.sim.schedule(i * 150e-6, qa.post_send, 4096)
        cl.run()
        assert not mon.triggered
        assert cl.sim.peek_next_time() is None  # still drains eventually


class TestRegistrationFallback:
    def test_falls_back_to_chain_when_mft_full(self):
        cl = Cluster.testbed(4, accel_config=AcceleratorConfig(max_groups=0))
        algo = CepheusBcast(cl, cl.host_ips)
        r = algo.run(1 << 20)
        assert algo.fell_back
        assert "registration failed" in algo.fallback_reason
        assert r.algorithm == "cepheus+fallback"
        assert set(r.recv_times) == {2, 3, 4}

    def test_fallback_jct_is_amcast_class(self):
        """Fallback runs must look like Chain, not like Cepheus."""
        size = 8 << 20
        cl_ok = Cluster.testbed(4)
        native = CepheusBcast(cl_ok, cl_ok.host_ips).run(size).jct
        cl_chain = Cluster.testbed(4)
        chain_jct = ChainBcast(cl_chain, cl_chain.host_ips,
                               slices=4).run(size).jct
        cl_bad = Cluster.testbed(4, accel_config=AcceleratorConfig(max_groups=0))
        fallen = CepheusBcast(cl_bad, cl_bad.host_ips).run(size).jct
        assert fallen > 1.2 * native
        assert fallen == pytest.approx(chain_jct, rel=0.15)


class TestMidFlightFallback:
    def test_goodput_collapse_reissues_over_amcast(self):
        """Accelerators vanish mid-flight (model of a fabric fault): the
        watchdog trips and the payload is re-sent over Chain."""
        cl = Cluster.testbed(4)
        algo = CepheusBcast(cl, cl.host_ips, safeguard=True,
                            expected_bps=90e9)
        algo.prepare()

        def sabotage():
            # Unregister the group from the switch: multicast data and
            # feedback now hit 'unregistered' drops -> zero goodput.
            accel = cl.fabric.accelerators["sw0"]
            accel.table.remove(algo.group.mcst_id)

        cl.sim.schedule(50e-6, sabotage)
        r = algo.run(64 << 20)
        assert algo.fell_back
        assert "goodput" in algo.fallback_reason
        assert set(r.recv_times) == {2, 3, 4}
        assert r.algorithm == "cepheus+fallback"
