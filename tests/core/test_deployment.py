"""Inline vs look-aside accelerator deployment (§IV)."""

import pytest

from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.core.accelerator import AcceleratorConfig
from repro.errors import RegistrationError


def _jct(deployment, size, n=4, **accel_kw):
    cfg = AcceleratorConfig(deployment=deployment, **accel_kw)
    cl = Cluster.testbed(n, accel_config=cfg)
    algo = CepheusBcast(cl, cl.host_ips)
    return algo.run(size), cl


class TestDeploymentModes:
    def test_unknown_deployment_rejected(self):
        with pytest.raises(RegistrationError):
            Cluster.testbed(2, accel_config=AcceleratorConfig(
                deployment="quantum"))

    def test_lookaside_counts_detours(self):
        r, cl = _jct("lookaside", 1 << 20)
        accel = cl.fabric.accelerators["sw0"]
        assert accel.lookaside_detours > 0
        r2, cl2 = _jct("inline", 1 << 20)
        assert cl2.fabric.accelerators["sw0"].lookaside_detours == 0

    def test_lookaside_adds_latency(self):
        inline, _ = _jct("inline", 64)
        look, _ = _jct("lookaside", 64)
        # two extra link traversals: ~1.2us of propagation + wire
        assert look.jct > inline.jct + 1e-6

    def test_lookaside_still_correct(self):
        r, _ = _jct("lookaside", 4 << 20)
        assert set(r.recv_times) == {2, 3, 4}

    def test_capacity_bounds_throughput(self):
        """With the board capacity squeezed to one 100G port, the 1-to-3
        multicast stream is *admission*-limited at the detour."""
        slow, _ = _jct("lookaside", 16 << 20, lookaside_ports=1,
                       lookaside_port_bw=50e9)
        fast, _ = _jct("lookaside", 16 << 20, lookaside_ports=4)
        assert slow.jct > 1.5 * fast.jct

    def test_default_board_matches_paper_prototype(self):
        """4x100G (the paper's board): no visible throughput penalty for
        a single multicast stream vs inline."""
        inline, _ = _jct("inline", 32 << 20)
        look, _ = _jct("lookaside", 32 << 20)
        assert look.jct < 1.1 * inline.jct


class TestLookasideAllPaths:
    """Every accelerator path must survive the detour, not just data."""

    def test_registration_through_lookaside(self):
        cfg = AcceleratorConfig(deployment="lookaside")
        cl = Cluster.testbed(4, accel_config=cfg)
        algo = CepheusBcast(cl, cl.host_ips)
        algo.prepare()  # register_sync inside would raise on failure
        assert algo.group.registered

    def test_feedback_through_lookaside(self):
        cfg = AcceleratorConfig(deployment="lookaside")
        cl = Cluster.testbed(4, accel_config=cfg)
        algo = CepheusBcast(cl, cl.host_ips)
        r = algo.run(4 << 20)
        assert r.sender_done is not None  # aggregated ACKs made it back

    def test_reduce_mode_through_lookaside(self):
        from repro.ext import InNetworkReduce

        cfg = AcceleratorConfig(deployment="lookaside")
        cl = Cluster.testbed(8, accel_config=cfg)
        red = InNetworkReduce(cl, cl.host_ips)
        r = red.run(1 << 20)
        assert r.members_completed == 7

    def test_loss_recovery_through_lookaside(self):
        cfg = AcceleratorConfig(deployment="lookaside")
        cl = Cluster.fat_tree_cluster(4, accel_config=cfg)
        cl.topo.set_loss_rate(1e-3)
        algo = CepheusBcast(cl, [1, 2, 3, 5])
        r = algo.run(4 << 20)
        assert set(r.recv_times) == {2, 3, 5}
