"""Clone-before-rewrite audit for the replicate -> bridge stage split.

Connection bridging (Fig. 4) rewrites a replica's headers in place at a
host-facing (leaf) entry.  Replication materializes one packet object
per MDT branch *before* any rewrite, so a replica still queued for a
sibling branch — in particular the unbridged copy climbing toward
another rack — must never observe a leaf's rewrite.  A regression here
is vicious: the sibling replica would leave the switch already carrying
some other receiver's dstIP/dstQP (or a double-shifted WRITE vaddr) and
either get misrouted or corrupt the far receiver's MR placement.

These tests audit the property two ways: object identity on the bus
(`bridge` events must never rewrite an object another branch emits) and
wire-level header checks at a switch that serves a host leaf and an
uplink branch from the same replication decision.
"""

from repro import constants
from repro.apps import Cluster
from repro.net.packet import PacketType


def _group(cluster, members, leader, mr_info=None):
    qps = {ip: cluster.ctx(ip).create_qp() for ip in members}
    group = cluster.fabric.create_group(qps, leader_ip=leader,
                                        mr_info=mr_info)
    cluster.fabric.register_sync(group)
    return group, qps


def test_leaf_rewrite_never_touches_sibling_branch_replica():
    """Members 1 (sender), 2 (same edge) and 3 (other rack): edge0_0
    replicates each DATA packet to a host leaf AND an uplink in one
    stage pass.  The uplink copy must still carry the multicast
    addressing after the leaf copy was bridged."""
    cl = Cluster.fat_tree_cluster(4)
    group, qps = _group(cl, members=[1, 2, 3], leader=1)
    edge = next(s for s in cl.topo.switches if s.name == "edge0_0")
    uplink_data = []
    bridged_ids = set()

    def on_bridge(accel, mft, replica, entry):
        bridged_ids.add(id(replica))

    def on_emit(switch, pkt, out_port, in_port):
        if (switch is edge and pkt.ptype == PacketType.DATA
                and not switch.is_host_port(out_port)):
            uplink_data.append(pkt)
            # identity audit: the packet leaving toward the sibling
            # subtree is never an object the bridge stage rewrote
            assert id(pkt) not in bridged_ids
            # header audit: still multicast-addressed, vaddr untouched
            assert pkt.dst_ip == group.mcst_id
            assert pkt.src_ip == 1

    cl.sim.bus.subscribe("bridge", on_bridge)
    cl.sim.bus.subscribe("emit", on_emit)
    qps[1].post_send(8 * constants.MTU_BYTES)
    cl.run()
    assert len(uplink_data) >= 8  # every PSN climbed toward member 3
    assert bridged_ids            # ... and leaf bridging did happen
    assert qps[2].recv.bytes_delivered == 8 * constants.MTU_BYTES
    assert qps[3].recv.bytes_delivered == 8 * constants.MTU_BYTES


def test_write_vaddr_not_double_shifted_across_branches():
    """Multicast WRITE with different MR bases per receiver: if a leaf
    rewrite leaked into the sibling branch, the far receiver's vaddr
    would be shifted by *both* bases and its MR validation would miss."""
    cl = Cluster.fat_tree_cluster(4)
    members = [1, 2, 3]
    mrs = {ip: cl.ctx(ip).reg_mr(1 << 20) for ip in (2, 3)}
    group, qps = _group(
        cl, members=members, leader=1,
        mr_info={ip: (mr.addr, mr.rkey) for ip, mr in mrs.items()})
    qps[1].post_write(8 * constants.MTU_BYTES, vaddr=0, rkey=0)
    cl.run()
    for ip in (2, 3):
        table = cl.ctx(ip).mr_table  # validated once per message
        assert table.write_hits == 1, f"member {ip} missed its MR window"
        assert table.write_misses == 0


def test_last_replica_reuses_ingress_packet_only_when_terminal():
    """The replication stage's allocation economy (the original packet
    is reused for the final branch) must never alias two branches: in a
    single-switch group every emitted replica is a distinct object."""
    cl = Cluster.testbed(4)
    group, qps = _group(cl, members=cl.host_ips, leader=1)
    sw = cl.topo.switches[0]
    per_psn = {}

    def on_emit(switch, pkt, out_port, in_port):
        if switch is sw and pkt.ptype == PacketType.DATA:
            per_psn.setdefault(pkt.psn, []).append(id(pkt))

    cl.sim.bus.subscribe("emit", on_emit)
    qps[1].post_send(4 * constants.MTU_BYTES)
    cl.run()
    for psn, ids in per_psn.items():
        assert len(ids) == len(set(ids)), f"psn {psn}: aliased replicas"
