"""MFT structure: Path Index/Table, aggregation state, memory model."""

import pytest

from repro import constants
from repro.core.mft import NO_ACK, Mft, MftTable, PathEntry
from repro.errors import GroupError, RegistrationError

GID = constants.MCSTID_BASE


class TestPathManagement:
    def test_empty_table(self):
        mft = Mft(GID, 8)
        assert mft.path_table == []
        assert not mft.has_port(3)
        assert mft.entry(3) is None

    def test_add_entry_indexes_port(self):
        mft = Mft(GID, 8)
        e = mft.add_entry(PathEntry(port=5, is_host=False))
        assert mft.has_port(5)
        assert mft.entry(5) is e
        assert mft.path_index[5] == 1  # 1-based index into the table

    def test_add_is_idempotent_per_port(self):
        mft = Mft(GID, 8)
        a = mft.add_entry(PathEntry(port=2, is_host=False))
        b = mft.add_entry(PathEntry(port=2, is_host=False))
        assert a is b and len(mft.path_table) == 1

    def test_host_info_upgrades_switch_entry(self):
        """The MRP ingress creates a bare entry; a directly-attached
        member on the same port later fills in its connection info."""
        mft = Mft(GID, 8)
        mft.add_entry(PathEntry(port=1, is_host=False))
        mft.add_entry(PathEntry(port=1, is_host=True, dst_ip=9, dst_qp=0x77))
        e = mft.entry(1)
        assert e.is_host and e.dst_ip == 9 and e.dst_qp == 0x77

    def test_table_bounded_by_port_count(self):
        """The Path Table can never exceed the switch radix — the §III-D
        'fixed to at most n entries' property."""
        mft = Mft(GID, 8)
        for p in range(8):
            mft.add_entry(PathEntry(port=p, is_host=(p % 2 == 0)))
        assert len(mft.path_table) == 8
        # Re-adding existing ports never grows the table.
        for p in range(8):
            mft.add_entry(PathEntry(port=p, is_host=False))
        assert len(mft.path_table) == 8

    def test_overfull_table_raises(self):
        """Defensive bound: a corrupt index cannot push past the radix."""
        mft = Mft(GID, 2)
        mft.add_entry(PathEntry(port=0, is_host=False))
        mft.add_entry(PathEntry(port=1, is_host=False))
        mft.path_index[1] = 0  # simulate index corruption
        with pytest.raises(GroupError):
            mft.add_entry(PathEntry(port=1, is_host=False))

    def test_iter_downstream_prunes_ingress(self):
        mft = Mft(GID, 8)
        for p in (0, 1, 2):
            mft.add_entry(PathEntry(port=p, is_host=False))
        ports = [e.port for e in mft.iter_downstream(exclude_port=1)]
        assert ports == [0, 2]


class TestAggregationState:
    def _mft(self, acks):
        mft = Mft(GID, 8)
        for port, ack in acks.items():
            e = mft.add_entry(PathEntry(port=port, is_host=True))
            e.ack_psn = ack
        return mft

    def test_min_ack_over_all_paths(self):
        mft = self._mft({0: 10, 1: 7, 2: 12})
        assert mft.min_ack_psn() == 7
        assert mft.min_port == 1

    def test_upstream_port_excluded(self):
        mft = self._mft({0: 10, 1: 3, 2: 12})
        mft.ack_out_port = 1
        assert mft.min_ack_psn() == 10
        assert mft.min_port == 0

    def test_empty_downstream_returns_none(self):
        mft = self._mft({0: 5})
        mft.ack_out_port = 0
        assert mft.min_ack_psn() is None

    def test_initial_state(self):
        mft = Mft(GID, 8)
        assert mft.agg_ack_psn == NO_ACK
        assert mft.tri_port is None
        assert mft.me_psn is None
        assert mft.ack_out_port is None


class TestMemoryModel:
    def test_full_64_port_table_size(self):
        mft = Mft(GID, 64)
        for p in range(64):
            mft.add_entry(PathEntry(port=p, is_host=True))
        assert mft.memory_bytes() == constants.MFT_BYTES_PER_GROUP_64P

    def test_paper_bound_1k_groups(self):
        """§III-D: 1K MGs cost at most ~0.69 MB at 64 ports."""
        per_group = constants.MFT_BYTES_PER_GROUP_64P
        assert per_group * 1024 <= 0.75 * 1e6

    def test_memory_independent_of_group_size(self):
        """Hierarchical state: a 4-path MFT costs the same whether the
        subtrees hold 4 or 4000 receivers."""
        mft = Mft(GID, 64)
        for p in range(4):
            mft.add_entry(PathEntry(port=p, is_host=False))
        assert mft.memory_bytes() == 64 + 4 * 10 + 20


class TestMftTable:
    def test_get_or_create(self):
        t = MftTable(8)
        a = t.get_or_create(GID)
        assert t.get_or_create(GID) is a
        assert len(t) == 1 and GID in t

    def test_capacity_enforced(self):
        t = MftTable(8, max_groups=2)
        t.get_or_create(GID)
        t.get_or_create(GID + 1)
        with pytest.raises(RegistrationError):
            t.get_or_create(GID + 2)

    def test_remove_frees_slot(self):
        t = MftTable(8, max_groups=1)
        t.get_or_create(GID)
        t.remove(GID)
        t.get_or_create(GID + 1)  # no raise

    def test_total_memory(self):
        t = MftTable(64)
        for g in range(10):
            t.get_or_create(GID + g)
        assert t.total_memory_bytes() == 10 * (64 + 20)
