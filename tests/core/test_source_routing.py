"""Source-routed deployment: Elmo/Bert header encoding + residual fallback."""

import pytest

from repro import constants
from repro.apps import Cluster
from repro.check import InvariantMonitor
from repro.collectives import CepheusBcast
from repro.core.accelerator import AcceleratorConfig
from repro.core.source_routing import (BertAggregator, FabricView,
                                       ScalingModel, SourceRoutingConfig,
                                       compute_tree, rule_bytes, split_rules)
from repro.errors import GroupError


def _cluster(n=4, *, fat=False, k=4, **sr_kw):
    cfg = AcceleratorConfig(
        deployment="source_routed",
        source_routing=SourceRoutingConfig(**sr_kw) if sr_kw else None)
    if fat:
        return Cluster.fat_tree_cluster(k, accel_config=cfg)
    return Cluster.testbed(n, accel_config=cfg)


def _prepare(cl, members):
    algo = CepheusBcast(cl, members)
    algo.prepare()
    assert not algo.fell_back, algo.fallback_reason
    return algo


def _tap(algo):
    """Per-receiver list of (msg_id, size) in delivery order.

    Pairs with raw ``post_send`` on the prepared group —
    ``algo.run`` would overwrite these hooks with its own recorders.
    """
    got = {}
    for ip, qp in algo.qps.items():
        lst = []
        got[ip] = lst
        qp.on_message = (lambda l: lambda mid, sz, now, meta:
                         l.append((mid, sz)))(lst)
    return got


# ---------------------------------------------------------------------------
# Encoder units
# ---------------------------------------------------------------------------

class TestEncoder:
    def test_rule_bytes(self):
        assert rule_bytes(4) == 3      # 2B tag + 1B bitmap
        assert rule_bytes(8) == 3
        assert rule_bytes(9) == 4
        assert rule_bytes(48) == 8

    def test_compute_tree_covers_every_member(self):
        from repro.net import Simulator, fat_tree
        topo = fat_tree(Simulator(), 4)
        view = FabricView(topo)
        members = [1, 2, 5, 9, 13]     # one per pod + two in pod 0
        bitmaps = compute_tree(view, members[0], members)
        for ip in members:
            sw, port = topo.leaf_of(ip)
            assert bitmaps[sw.name] & (1 << port), \
                f"member {ip}'s host port missing from {sw.name}"

    def test_compute_tree_is_connected(self):
        from repro.net import Simulator, fat_tree
        topo = fat_tree(Simulator(), 4)
        view = FabricView(topo)
        bitmaps = compute_tree(view, 1, [1, 2, 5, 9, 13])
        # every switch in the tree except the root leaf must be
        # reachable through a peer whose bitmap points at it
        root_leaf, _ = topo.leaf_of(1)
        for name in bitmaps:
            if name == root_leaf.name:
                continue
            assert any(
                bitmaps.get(peer.name, 0) & (1 << peer_port)
                for port, (peer, peer_port) in view.peers[name].items()
            ), f"{name} unreachable in encoded tree"

    def test_split_rules_budget_and_priority(self):
        from repro.net import Simulator, star
        topo = star(Simulator(), 4)
        view = FabricView(topo)
        sw = topo.switches[0].name
        host_bm = view.host_mask[sw] & 0b0110
        assert host_bm
        # budget of exactly base + one rule: the host-facing rule wins
        budget = constants.SR_BASE_BYTES + rule_bytes(
            topo.switches[0].n_ports)
        in_hdr, spilled, hbytes = split_rules(
            view, {sw: host_bm}, budget)
        assert in_hdr == {sw: host_bm} and not spilled
        assert hbytes == budget
        # zero-rule budget: everything spills
        in_hdr, spilled, hbytes = split_rules(
            view, {sw: host_bm}, constants.SR_BASE_BYTES)
        assert not in_hdr and spilled == {sw: host_bm}
        assert hbytes == constants.SR_BASE_BYTES

    def test_bert_aggregator_shares_identical_signatures(self):
        agg = BertAggregator()
        k1 = agg.acquire({"a": 0b0110, "b": 0b1000})
        k2 = agg.acquire({"b": 0b1000, "a": 0b0110})   # same signature
        k3 = agg.acquire({"a": 0b0111})
        assert k1 == k2 and k1 != k3
        assert agg.live_keys == 2
        assert agg.release(k1) is False   # still refcounted by k2's user
        assert agg.release(k2) is True
        assert agg.release(k3) is True
        assert agg.live_keys == 0

    def test_config_validation(self):
        with pytest.raises(GroupError):
            SourceRoutingConfig(aggregator="quantum")
        with pytest.raises(GroupError):
            SourceRoutingConfig(rule_budget_bytes=constants.SR_BASE_BYTES - 1)


# ---------------------------------------------------------------------------
# Dataplane parity + soft state
# ---------------------------------------------------------------------------

class TestDataplane:
    def test_parity_with_inline_on_fig8_workload(self):
        """inline and source_routed deliver identical payload sequences
        for the fig8 message sizes (the acceptance criterion)."""
        sizes = [64, 1 << 10, 16 << 10, 64 << 10]
        seqs = {}
        for deployment in ("inline", "source_routed"):
            cl = Cluster.testbed(
                4, accel_config=AcceleratorConfig(deployment=deployment))
            algo = _prepare(cl, cl.host_ips)
            got = _tap(algo)
            src = algo.qps[algo.root]
            for size in sizes:
                src.post_send(size)
                cl.sim.run()
            # msg ids are process-global; the payload sequence is the
            # deployment-independent part
            seqs[deployment] = {
                ip: [sz for _, sz in msgs] for ip, msgs in got.items()}
        assert seqs["inline"] == seqs["source_routed"]
        for ip, payloads in seqs["inline"].items():
            if ip != 1:
                assert payloads == sizes

    def test_transit_switches_hold_no_control_state(self):
        """The point of the deployment: MRP installs nothing on transit
        switches — their feedback MFTs appear lazily on first data."""
        cl = _cluster(fat=True)
        members = cl.host_ips[:5]
        algo = _prepare(cl, members)
        leaf_names = {cl.topo.leaf_of(ip)[0].name for ip in members}
        transit = [a for name, a in cl.fabric.accelerators.items()
                   if name not in leaf_names]
        assert all(a.mft_of(algo.group.mcst_id) is None for a in transit)
        algo.run(4096)
        touched = [a for a in transit
                   if a.mft_of(algo.group.mcst_id) is not None]
        assert touched, "no transit switch ever replicated"
        for accel in touched:
            mft = accel.mft_of(algo.group.mcst_id)
            assert all(not e.is_host for e in mft.path_table)
        assert sum(a.sr_header_hits for a in
                   cl.fabric.accelerators.values()) > 0

    def test_invariants_hold_under_source_routing(self):
        cl = _cluster(fat=True)
        algo = _prepare(cl, cl.host_ips[:6])
        monitor = InvariantMonitor()
        monitor.attach_cluster(cl)
        try:
            algo.run(32 << 10)
            assert monitor.violations == []
        finally:
            monitor.detach()


# ---------------------------------------------------------------------------
# Residual fallback + migration (the satellite test requirements)
# ---------------------------------------------------------------------------

class TestResidualFallback:
    def test_overflow_group_delivers_exactly_once_via_residual(self):
        """rule budget of SR_BASE only: every rule spills, the whole
        tree rides the residual table — still exactly-once."""
        cl = _cluster(fat=True, rule_budget_bytes=constants.SR_BASE_BYTES)
        members = cl.host_ips[:5]
        algo = _prepare(cl, members)
        hdr = cl.fabric.source_routing.header_of(algo.group.mcst_id)
        assert not hdr.rules and hdr.fallback_key != 0
        got = _tap(algo)
        algo.qps[algo.root].post_send(16 << 10)
        cl.sim.run()
        for ip in members:
            if ip == algo.root:
                continue
            assert len(got[ip]) == 1, f"member {ip}: {got[ip]}"
        accels = cl.fabric.accelerators.values()
        assert sum(a.sr_residual_hits for a in accels) > 0
        assert sum(a.sr_header_hits for a in accels) == 0

    def test_migration_between_header_and_residual_in_flight(self):
        """A join mid-transfer pushes the group over the rule budget:
        in-flight packets (old header, fully header-routed) and new
        packets (spilled, residual-routed) coexist without a drop or a
        duplicate."""
        # budget fits the 3-member single-pod tree but not the grown one
        cl = _cluster(fat=True, rule_budget_bytes=constants.SR_BASE_BYTES + 9)
        members = cl.host_ips[:3]          # one pod: 2 switches + spine? no —
        algo = _prepare(cl, members)       # 3 hosts under 2 edge switches
        sr = cl.fabric.source_routing
        assert sr.header_of(algo.group.mcst_id).fallback_key == 0, \
            "initial tree must fit the header for the migration to mean anything"
        got = _tap(algo)
        done = []
        src = algo.qps[algo.root]
        joiner = cl.host_ips[12]           # far pod: many extra hops
        qp = cl.ctx(joiner).create_qp()
        mm = cl.fabric.membership(algo.group)
        cl.sim.schedule(3e-6, lambda: mm.join(joiner, qp))
        src.post_send(256 << 10, on_complete=lambda mid, now: done.append(now))
        cl.sim.run(until=cl.sim.now + 0.05)
        assert done, "transfer stalled across the migration"
        hdr = sr.header_of(algo.group.mcst_id)
        assert hdr.fallback_key != 0, "grown tree should have spilled"
        for ip in members:
            if ip == algo.root:
                continue
            assert len(got[ip]) == 1, f"member {ip}: {got[ip]}"
        accels = cl.fabric.accelerators.values()
        assert sum(a.sr_header_hits for a in accels) > 0
        assert sum(a.sr_residual_hits for a in accels) > 0

    def test_join_and_leave_reencode_header(self):
        cl = _cluster(fat=True)
        algo = _prepare(cl, cl.host_ips[:5])
        sr = cl.fabric.source_routing
        mm = cl.fabric.membership(algo.group)
        assert sr.header_of(algo.group.mcst_id).epoch == 0

        victim = cl.host_ips[3]
        mm.leave_sync(victim)
        assert sr.header_of(algo.group.mcst_id).epoch == algo.group.epoch == 1
        assert sr.header_recompiles >= 1

        joiner = cl.host_ips[7]
        qp = cl.ctx(joiner).create_qp()
        mm.join_sync(joiner, qp)
        assert sr.header_of(algo.group.mcst_id).epoch == algo.group.epoch == 2

        got = _tap(algo)
        joined = []
        qp.on_message = lambda mid, sz, now, meta: joined.append(sz)
        algo.qps[algo.root].post_send(8 << 10)
        cl.sim.run()
        assert joined == [8 << 10]
        assert got[victim] == []           # departed member gets nothing
        for ip in (cl.host_ips[1], cl.host_ips[2]):
            assert [sz for _, sz in got[ip]] == [8 << 10]

    def test_detach_releases_all_residual_rules(self):
        cl = _cluster(fat=True, rule_budget_bytes=constants.SR_BASE_BYTES)
        algo = _prepare(cl, cl.host_ips[:5])
        algo.run(4096)
        assert any(a.sr_rules for a in cl.fabric.accelerators.values())
        cl.fabric.unregister(algo.group)
        assert all(not a.sr_rules for a in cl.fabric.accelerators.values())
        assert cl.fabric.source_routing.bert.live_keys == 0


# ---------------------------------------------------------------------------
# Scaling model (the srmc_scaling backbone)
# ---------------------------------------------------------------------------

class TestScalingModel:
    def test_header_state_flat_while_mft_linear(self):
        model = ScalingModel()
        lo = model.run(1_000, seed=7)
        hi = model.run(8_000, seed=7)
        assert hi["mft_state_bytes"] / lo["mft_state_bytes"] > 4
        assert hi["elmo_state_bytes"] / lo["elmo_state_bytes"] < 2
        assert hi["bert_state_bytes"] <= hi["elmo_state_bytes"]
        assert hi["bert_redundant_ports"] <= hi["elmo_redundant_ports"]
        assert hi["elmo_ctrl_records"] < hi["mft_ctrl_records"] / 10

    def test_deterministic(self):
        model = ScalingModel()
        assert model.run(500, seed=3) == model.run(500, seed=3)
