"""Additional feedback-engine scenarios: deep trees, source switching,
and pathological orderings."""

import pytest

from repro import constants
from repro.core.feedback import FeedbackConfig, FeedbackEngine
from repro.core.mft import Mft, PathEntry
from repro.net.packet import PacketType

GID = constants.MCSTID_BASE


def make_mft(ports, upstream=7):
    mft = Mft(GID, 8)
    mft.add_entry(PathEntry(port=upstream, is_host=False))
    mft.ack_out_port = upstream
    for p in ports:
        mft.add_entry(PathEntry(port=p, is_host=True))
    return mft


class TestHierarchicalComposition:
    def test_two_level_aggregation_equals_flat(self):
        """A leaf aggregating {A,B} feeding a spine aggregating
        {leaf, C} must emit exactly what a flat {A,B,C} switch would."""
        flat_eng = FeedbackEngine()
        flat = make_mft(ports=(0, 1, 2))
        leaf_eng = FeedbackEngine()
        leaf = make_mft(ports=(0, 1), upstream=6)
        spine_eng = FeedbackEngine()
        spine = make_mft(ports=(3, 2), upstream=7)  # 3 <- leaf, 2 <- C

        import random
        rng = random.Random(42)
        prefix = {0: 0, 1: 0, 2: 0}
        flat_out, spine_out = [], []
        for _ in range(400):
            port = rng.choice([0, 1, 2])
            prefix[port] += rng.randint(1, 3)
            psn = prefix[port] - 1
            flat_out += [p for t, p in flat_eng.on_ack(flat, port, psn)
                         if t == PacketType.ACK]
            if port == 2:
                spine_out += [p for t, p in
                              spine_eng.on_ack(spine, 2, psn)
                              if t == PacketType.ACK]
            else:
                for t, agg in leaf_eng.on_ack(leaf, port, psn):
                    if t == PacketType.ACK:
                        spine_out += [p for tt, p in
                                      spine_eng.on_ack(spine, 3, agg)
                                      if tt == PacketType.ACK]
        # Hierarchy may emit fewer intermediate points (coarser), but
        # the cumulative guarantee must be identical: same final value
        # and every spine emission is a valid flat-prefix point.
        assert flat_out and spine_out
        assert spine_out[-1] == flat_out[-1]
        assert set(spine_out) <= set(range(min(flat_out), flat_out[-1] + 1))
        assert spine_out == sorted(spine_out)


class TestSourceSwitchFeedbackState:
    def test_upstream_exclusion_follows_ack_out_port(self):
        eng = FeedbackEngine()
        mft = make_mft(ports=(0, 1), upstream=7)
        eng.on_ack(mft, 0, 10)
        eng.on_ack(mft, 1, 10)
        assert mft.agg_ack_psn == 10
        # Source moves behind port 0: now aggregate over {1, 7}.
        mft.ack_out_port = 0
        mft.tri_port = None
        mft.entry(7).ack_psn = 12   # the old source path catches up
        out = eng.on_ack(mft, 1, 12)
        assert (PacketType.ACK, 12) in out

    def test_stale_me_psn_not_released_for_old_stream(self):
        eng = FeedbackEngine()
        mft = make_mft(ports=(0, 1))
        eng.on_nack(mft, 0, 5)
        # Before port 1 confirms, the bottleneck moves past PSN 5 (e.g.
        # the retransmission landed): a NACK(5) must not be re-released
        # after the aggregate has moved beyond it.
        eng.on_ack(mft, 0, 9)
        out = eng.on_ack(mft, 1, 9)
        nacks = [p for t, p in out if t == PacketType.NACK]
        assert nacks == []
        assert mft.agg_ack_psn == 9


class TestPathologicalOrderings:
    def test_ack_regression_ignored(self):
        """A delayed, lower ACK must never shrink per-path state."""
        eng = FeedbackEngine()
        mft = make_mft(ports=(0,))
        eng.on_ack(mft, 0, 50)
        eng.on_ack(mft, 0, 10)  # stale reordered ACK
        assert mft.entry(0).ack_psn == 50
        assert mft.agg_ack_psn == 50

    def test_duplicate_acks_emit_nothing_new(self):
        eng = FeedbackEngine()
        mft = make_mft(ports=(0, 1))
        eng.on_ack(mft, 0, 5)
        eng.on_ack(mft, 1, 5)
        before = eng.acks_out
        for _ in range(10):
            eng.on_ack(mft, 0, 5)
            eng.on_ack(mft, 1, 5)
        assert eng.acks_out == before

    def test_nack_storm_released_once(self):
        eng = FeedbackEngine()
        mft = make_mft(ports=(0, 1))
        eng.on_ack(mft, 1, 3)
        out = []
        for _ in range(20):
            out += eng.on_nack(mft, 0, 4)
        nacks = [p for t, p in out if t == PacketType.NACK]
        # one release per distinct MePSN episode, not per incoming NACK
        assert 1 <= len(nacks) <= 20
        assert all(p == 4 for p in nacks)
