"""Membership delta coalescing: batched MRP deltas must converge to the
same fabric state as the op-at-a-time sequence.

The broker-fabric scenario retires/admits subscribers by the thousand;
coalescing folds every op arriving within one window into a single
multi-record MRP delta.  These tests pin the two properties that make
that safe:

* **convergence** — for any batch of join/leave ops, the final group
  membership, epoch, and per-switch MFT state (path entries, member
  sets, reverse index) are identical to the uncoalesced sequence;
* **aggregate release** — a coalesced LEAVE that removes the member
  gating a pending min-AckPSN aggregate unsticks the in-flight transfer
  exactly like the uncoalesced LEAVE does.
"""

import random

import pytest

from repro.apps import Cluster
from repro.check import InvariantMonitor
from repro.collectives import CepheusBcast
from repro.errors import GroupError
from repro.net.failures import FailureInjector

WINDOW = 200e-6


def _cluster(n=10):
    return Cluster.testbed(n)


def _group_of(cl, n_members):
    algo = CepheusBcast(cl, cl.host_ips[:n_members])
    algo.prepare()
    return algo


def _drain(cl, mm):
    """Run the sim until every pending/in-flight delta settles."""
    mm.flush_pending()
    for _ in range(10_000):
        if not mm._inflight and not mm._pending:
            return
        nxt = cl.sim.peek_next_time()
        if nxt is None:
            break
        cl.sim.run(until=nxt)
    assert not mm._inflight and not mm._pending, "deltas never settled"


def _mft_state(cl):
    """JSON-able snapshot of every accelerator's per-group MDT state."""
    state = {}
    for name, accel in sorted(cl.fabric.accelerators.items()):
        for gid, mft in accel.table.items():
            rows = sorted((e.port, e.is_host, e.dst_ip, e.dst_qp)
                          for e in mft.entries())
            members = {p: sorted(s) for p, s in
                       sorted(mft.port_members.items())}
            state[(name, gid)] = (rows, members,
                                  dict(sorted(mft.member_port.items())),
                                  mft.epoch)
    return state


def _apply_ops(cl, algo, ops, window):
    """Apply (kind, ip) ops; coalesced when window is not None."""
    mm = cl.fabric.membership(algo.group, coalesce_window=window)
    for kind, ip in ops:
        if kind == "join":
            qp = cl.ctx(ip).create_qp()
            if window is None:
                mm.join_sync(ip, qp)
            else:
                mm.join(ip, qp)
        else:
            if window is None:
                mm.leave_sync(ip)
            else:
                mm.leave(ip)
    _drain(cl, mm)
    return mm


def _draw_ops(rng, initial, outsiders):
    """A random conflict-free batch: distinct targets, never the leader,
    never below the 2-member floor."""
    members = set(initial)
    ops = []
    leader = initial[0]
    join_pool = list(outsiders)
    leave_pool = [ip for ip in initial[1:]]
    rng.shuffle(join_pool)
    rng.shuffle(leave_pool)
    for _ in range(rng.randint(1, 5)):
        kind = rng.choice(("join", "leave"))
        if kind == "join" and join_pool:
            ip = join_pool.pop()
            ops.append(("join", ip))
            members.add(ip)
        elif leave_pool and len(members) > 3:
            ip = leave_pool.pop()
            ops.append(("leave", ip))
            members.discard(ip)
    return ops


class TestConvergence:
    def test_batched_ops_converge_to_uncoalesced_state(self):
        """Property: over seeded random batches, coalesced == sequential
        for membership, epoch, and every switch's MFT/member state."""
        for seed in range(8):
            rng = random.Random(seed)
            cl_a, cl_b = _cluster(), _cluster()
            algo_a, algo_b = _group_of(cl_a, 5), _group_of(cl_b, 5)
            initial = cl_a.host_ips[:5]
            outsiders = cl_a.host_ips[5:]
            ops = _draw_ops(rng, initial, outsiders)
            _apply_ops(cl_a, algo_a, ops, window=None)
            _apply_ops(cl_b, algo_b, ops, window=WINDOW)

            assert sorted(algo_a.group.members) == sorted(algo_b.group.members)
            assert algo_a.group.epoch == algo_b.group.epoch
            sa, sb = _mft_state(cl_a), _mft_state(cl_b)
            assert set(sa) == set(sb)
            for key in sa:
                rows_a, mem_a, idx_a, _ = sa[key]
                rows_b, mem_b, idx_b, _ = sb[key]
                assert rows_a == rows_b, (seed, key)
                assert mem_a == mem_b, (seed, key)
                assert idx_a == idx_b, (seed, key)

    def test_epoch_log_matches_op_order(self):
        cl = _cluster()
        algo = _group_of(cl, 4)
        mm = cl.fabric.membership(algo.group, coalesce_window=WINDOW)
        ip_a, ip_b = cl.host_ips[4], cl.host_ips[5]
        mm.join(ip_a, cl.ctx(ip_a).create_qp())
        mm.join(ip_b, cl.ctx(ip_b).create_qp())
        mm.leave(cl.host_ips[1])
        _drain(cl, mm)
        assert mm.epoch_log == [(1, "join", ip_a), (2, "join", ip_b),
                                (3, "leave", cl.host_ips[1])]
        assert algo.group.epoch == 3

    def test_coalesced_window_emits_one_delta_per_op_kind(self):
        """Three joins in one window ride a single MRP delta packet;
        uncoalesced they cost three."""
        cl = _cluster()
        algo = _group_of(cl, 4)
        mm = cl.fabric.membership(algo.group, coalesce_window=WINDOW)
        for ip in cl.host_ips[4:7]:
            mm.join(ip, cl.ctx(ip).create_qp())
        assert mm.mrp_deltas_sent == 0     # window still open
        _drain(cl, mm)
        assert mm.mrp_deltas_sent == 1
        assert mm.membership_ops == 3
        assert mm.mrp_confirms_rx == 3     # every joiner confirms
        for ip in cl.host_ips[4:7]:
            assert ip in algo.group.members

    def test_uncoalesced_counterpart_costs_one_delta_per_op(self):
        cl = _cluster()
        algo = _group_of(cl, 4)
        mm = cl.fabric.membership(algo.group)
        for ip in cl.host_ips[4:7]:
            mm.join_sync(ip, cl.ctx(ip).create_qp())
        assert mm.mrp_deltas_sent == 3
        assert mm.membership_ops == 3

    def test_conflicting_op_in_window_rejected_without_side_effects(self):
        """join(ip) then leave(ip) inside one window is rejected BEFORE
        the host-side group mutation, so membership and MDT never
        diverge — callers serialize via has_inflight()."""
        cl = _cluster()
        algo = _group_of(cl, 4)
        mm = cl.fabric.membership(algo.group, coalesce_window=WINDOW)
        ip = cl.host_ips[4]
        mm.join(ip, cl.ctx(ip).create_qp())
        epoch = algo.group.epoch
        with pytest.raises(GroupError):
            mm.leave(ip)
        assert ip in algo.group.members      # leave did NOT half-apply
        assert algo.group.epoch == epoch
        _drain(cl, mm)
        mm.leave(ip)                          # serialized: now legal
        _drain(cl, mm)
        assert ip not in algo.group.members

    def test_duplicate_op_in_window_rejected(self):
        cl = _cluster()
        algo = _group_of(cl, 4)
        mm = cl.fabric.membership(algo.group, coalesce_window=WINDOW)
        ip = cl.host_ips[4]
        mm.join(ip, cl.ctx(ip).create_qp())
        assert mm.has_inflight(ip)
        with pytest.raises(GroupError):
            mm.join(ip, cl.ctx(ip).create_qp())
        _drain(cl, mm)
        assert not mm.has_inflight(ip)

    def test_join_sync_pumps_through_the_window(self):
        cl = _cluster()
        algo = _group_of(cl, 4)
        mm = cl.fabric.membership(algo.group, coalesce_window=WINDOW)
        ip = cl.host_ips[4]
        mm.join_sync(ip, cl.ctx(ip).create_qp())
        assert ip in algo.group.members
        assert not mm._inflight and not mm._pending


class TestAggregateRelease:
    def test_coalesced_leave_unsticks_pending_aggregate(self):
        """A receiver stops acking mid-transfer; a coalesced LEAVE batch
        retiring it must release the min-AckPSN aggregate exactly like
        the uncoalesced path (same completion, same final aggregate)."""
        results = {}
        for window in (None, WINDOW):
            cl = _cluster(8)
            algo = _group_of(cl, 5)
            mm = cl.fabric.membership(algo.group, coalesce_window=window)
            injector = FailureInjector(cl.topo)
            victim = cl.host_ips[3]
            done = []
            src = algo.group.members[algo.group.current_source]

            def cut(cl=cl, injector=injector, victim=victim):
                sw, port = cl.topo.leaf_of(victim)
                injector.fail_link(sw, port)

            def retire(mm=mm, victim=victim):
                mm.prune(victim)

            cl.sim.schedule(20e-6, cut)
            cl.sim.schedule(400e-6, retire)
            src.post_send(256_000,
                          on_complete=lambda mid, now: done.append(now))
            cl.sim.run(until=cl.sim.now + 0.02)
            assert done, f"transfer stuck with window={window}"
            assert src.send_idle
            sw0 = next(iter(cl.fabric.accelerators.values()))
            mft = sw0.table.get(algo.group.mcst_id)
            results[window] = (len(done), mft.agg_ack_psn,
                               sorted(algo.group.members))
        assert results[None] == results[WINDOW]


class TestChurnHarnessWithCoalescing:
    def test_churn_campaign_clean_under_invariant_checker(self):
        """The full churn harness (joins, leaves, a crash auto-pruned by
        the failure detector) with coalescing enabled: exactly-once
        delivery and every invariant — including the member-index sync
        check — must hold."""
        from repro.harness.churn import ChurnConfig, run_churn_campaign

        cfg = ChurnConfig(coalesce_window=WINDOW)
        doc = run_churn_campaign(cfg, seed=11, trials=2, shrink=False)
        assert doc["failing_trials"] == []
        for r in doc["records"]:
            assert r["violations"] == []
            assert r["mismatched"] == []
            assert r["delta_failures"] == []

    def test_fat_tree_churn_with_coalescing(self):
        from repro.harness.churn import ChurnConfig, run_churn_campaign

        cfg = ChurnConfig(topo="fat_tree", hosts=8, k=4,
                          coalesce_window=WINDOW)
        doc = run_churn_campaign(cfg, seed=7, trials=1, shrink=False)
        assert doc["failing_trials"] == []


class TestBatchFailure:
    def test_partial_batch_failure_names_only_missing_members(self):
        """Two joiners in one batch; one never confirms — the failure
        entries must name the silent member only, and the landed state
        stays consistent (the monitor's sweep passes)."""
        cl = _cluster()
        algo = _group_of(cl, 4)
        monitor = InvariantMonitor()
        monitor.attach_cluster(cl)
        try:
            mm = cl.fabric.membership(algo.group, coalesce_window=WINDOW)
            good, bad = cl.host_ips[4], cl.host_ips[5]
            cl.topo.nic(bad).control_handler = None   # silent joiner
            mm.join(good, cl.ctx(good).create_qp())
            mm.join(bad, cl.ctx(bad).create_qp())
            mm.flush_pending()
            cl.sim.run(until=cl.sim.now + 0.02)
            assert mm.delta_failures
            assert all(ip == bad for _, ip, _ in mm.delta_failures)
            assert good in algo.group.members
            monitor.check_mft_consistency(cl.fabric, expect_connected=True)
            assert monitor.violations == []
        finally:
            monitor.detach()
