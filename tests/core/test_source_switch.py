"""Source switching (§III-E): one MFT, PSN sync, in-network detection."""

import pytest

from repro import constants
from repro.core.source_switch import SourceSwitchCoordinator, psn_consistent
from repro.errors import GroupError


def _group(cluster, members=None, leader=None):
    members = members or cluster.host_ips
    qps = {ip: cluster.ctx(ip).create_qp() for ip in members}
    group = cluster.fabric.create_group(qps, leader_ip=leader or members[0])
    cluster.fabric.register_sync(group)
    return group, qps


def _bcast(cluster, group, qps, size):
    src = group.current_source
    done = {}
    delivered = {}
    for ip in group.receivers():
        qps[ip].on_message = (
            lambda mid, sz, now, meta, _ip=ip: delivered.setdefault(_ip, sz))
    qps[src].post_send(size, on_complete=lambda mid, now: done.setdefault("t", now))
    cluster.run()
    return delivered, done


class TestPsnSynchronization:
    def test_consistent_after_switch(self, testbed):
        group, qps = _group(testbed)
        _bcast(testbed, group, qps, constants.MTU_BYTES * 100)
        assert psn_consistent(group)
        group.switch_source(3)
        assert group.current_source == 3
        assert psn_consistent(group)

    def test_new_source_delivers_to_everyone(self, testbed):
        group, qps = _group(testbed)
        _bcast(testbed, group, qps, constants.MTU_BYTES * 10)
        group.switch_source(2)
        delivered, done = _bcast(testbed, group, qps, constants.MTU_BYTES * 5)
        assert set(delivered) == {1, 3, 4}
        assert all(v == constants.MTU_BYTES * 5 for v in delivered.values())
        assert "t" in done  # new source got its aggregated ACKs

    def test_multiple_rotations(self, testbed):
        group, qps = _group(testbed)
        for new_src in (2, 3, 4, 1, 2):
            _bcast(testbed, group, qps, 8192)
            group.switch_source(new_src)
            assert psn_consistent(group)
        delivered, _ = _bcast(testbed, group, qps, 8192)
        assert len(delivered) == 3

    def test_switch_to_same_source_noop(self, testbed):
        group, qps = _group(testbed)
        group.switch_source(group.current_source)
        assert group.current_source == 1

    def test_nonmember_rejected(self, testbed):
        group, _ = _group(testbed, members=[1, 2, 3])
        with pytest.raises(GroupError):
            group.switch_source(4)


class TestInNetworkDetection:
    def test_accelerator_repoints_ack_out_port(self, testbed):
        group, qps = _group(testbed)
        accel = testbed.fabric.accelerators["sw0"]
        _bcast(testbed, group, qps, 8192)
        mft = accel.mft_of(group.mcst_id)
        port_of = {ip: testbed.topo.leaf_of(ip)[1] for ip in group.members}
        assert mft.ack_out_port == port_of[1]
        group.switch_source(3)
        _bcast(testbed, group, qps, 8192)
        assert mft.ack_out_port == port_of[3]
        assert accel.source_switches_seen >= 1

    def test_single_mft_reused_across_sources(self, fat_tree_cluster):
        """The scalability point of §III-E: rotation must not create new
        MFTs anywhere."""
        cl = fat_tree_cluster
        group, qps = _group(cl, members=[1, 3, 5, 7], leader=1)
        def total_mfts():
            return sum(len(a.table) for a in cl.fabric.accelerators.values())
        _bcast(cl, group, qps, 8192)
        before = total_mfts()
        for src in (3, 5, 7):
            group.switch_source(src)
            delivered, _ = _bcast(cl, group, qps, 8192)
            assert len(delivered) == 3
        assert total_mfts() == before

    def test_cross_rack_source_switch(self, fat_tree_cluster):
        """New source in a different rack: feedback must re-route toward
        it through the whole tree."""
        cl = fat_tree_cluster
        group, qps = _group(cl, members=[1, 5, 9, 13], leader=1)
        _bcast(cl, group, qps, constants.MTU_BYTES * 20)
        group.switch_source(13)
        delivered, done = _bcast(cl, group, qps, constants.MTU_BYTES * 20)
        assert set(delivered) == {1, 5, 9}
        assert "t" in done


class TestCoordinator:
    def test_requires_registered_group(self, testbed):
        qps = {ip: testbed.ctx(ip).create_qp() for ip in testbed.host_ips}
        group = testbed.fabric.create_group(qps, leader_ip=1)
        coord = SourceSwitchCoordinator(group)
        with pytest.raises(GroupError):
            coord.switch_to(2)

    def test_rotation_order(self, testbed):
        group, qps = _group(testbed)
        coord = SourceSwitchCoordinator(group)
        _bcast(testbed, group, qps, 4096)
        seq = [coord.rotate() for _ in range(4)]
        assert seq == [2, 3, 4, 1]
        assert coord.switch_count == 4
        assert coord.history == [1, 2, 3, 4, 1]
