"""MRP: chunking, payload layout, controller protocol, failures."""

import pytest

from repro import constants
from repro.apps import Cluster
from repro.core.accelerator import AcceleratorConfig
from repro.core.group import MemberRecord
from repro.core.mrp import MrpPayload, chunk_records
from repro.errors import RegistrationError


def _records(n):
    return [MemberRecord(ip=i + 1, qpn=0x100 + i) for i in range(n)]


class TestChunking:
    def test_small_group_single_packet(self):
        assert len(chunk_records(_records(10))) == 1

    def test_mtu_limit_respected(self):
        """Fig. 5: a 1500-byte MRP packet holds at most 183 records."""
        chunks = chunk_records(_records(400))
        assert len(chunks) == 3
        assert [len(c) for c in chunks] == [183, 183, 34]

    def test_exact_boundary(self):
        assert len(chunk_records(_records(183))) == 1
        assert len(chunk_records(_records(184))) == 2

    def test_invalid_chunk_size(self):
        with pytest.raises(RegistrationError):
            chunk_records(_records(3), per_packet=0)

    def test_payload_wire_size_under_mtu(self):
        payload = MrpPayload(mcst_id=constants.MCSTID_BASE, seq=0, total=1,
                             controller_ip=1, nodes=_records(183))
        assert payload.wire_bytes() <= constants.MRP_MTU_BYTES


class TestRegistrationFlow:
    def test_success_and_confirmations(self, testbed):
        fabric = testbed.fabric
        qps = {ip: testbed.ctx(ip).create_qp() for ip in testbed.host_ips}
        group = fabric.create_group(qps, leader_ip=1)
        fabric.register_sync(group)
        assert group.registered
        # every non-leader member affirmed membership
        for ip in (2, 3, 4):
            assert group.mcst_id in fabric.agents[ip].mrp_seen
        assert group.mcst_id not in fabric.agents[1].mrp_seen

    def test_registration_builds_mdt_on_leaf(self, testbed):
        fabric = testbed.fabric
        qps = {ip: testbed.ctx(ip).create_qp() for ip in testbed.host_ips}
        group = fabric.create_group(qps, leader_ip=1)
        fabric.register_sync(group)
        mft = fabric.accelerators["sw0"].mft_of(group.mcst_id)
        assert mft is not None
        # star: entries for all 4 member host ports
        assert sorted(e.port for e in mft.entries()) == [0, 1, 2, 3]
        hosts = {e.dst_ip for e in mft.entries() if e.is_host}
        assert hosts == {1, 2, 3, 4}

    def test_mft_capacity_failure_reported(self):
        cl = Cluster.testbed(4, accel_config=AcceleratorConfig(max_groups=1))
        fabric = cl.fabric
        qps1 = {ip: cl.ctx(ip).create_qp() for ip in cl.host_ips}
        g1 = fabric.create_group(qps1, leader_ip=1)
        fabric.register_sync(g1)
        qps2 = {ip: cl.ctx(ip).create_qp() for ip in cl.host_ips}
        g2 = fabric.create_group(qps2, leader_ip=1)
        with pytest.raises(RegistrationError):
            fabric.register_sync(g2, timeout=2e-3)

    def test_timeout_on_unreachable_member(self, testbed):
        """A member whose confirmations never arrive fails registration."""
        fabric = testbed.fabric
        qps = {ip: testbed.ctx(ip).create_qp() for ip in testbed.host_ips}
        group = fabric.create_group(qps, leader_ip=1)
        # Sabotage host 3's control plane.
        testbed.topo.nic(3).control_handler = None
        with pytest.raises(RegistrationError, match="timeout"):
            fabric.register_sync(group, timeout=2e-3)

    def test_mr_info_lands_in_mft(self, testbed):
        fabric = testbed.fabric
        qps = {ip: testbed.ctx(ip).create_qp() for ip in testbed.host_ips}
        mrs = {ip: testbed.ctx(ip).reg_mr(1 << 20) for ip in (2, 3, 4)}
        group = fabric.create_group(
            qps, leader_ip=1,
            mr_info={ip: (mr.addr, mr.rkey) for ip, mr in mrs.items()})
        fabric.register_sync(group)
        mft = fabric.accelerators["sw0"].mft_of(group.mcst_id)
        for ip in (2, 3, 4):
            entry = next(e for e in mft.entries() if e.dst_ip == ip)
            assert (entry.vaddr, entry.rkey) == (mrs[ip].addr, mrs[ip].rkey)

    def test_large_group_multi_packet_registration(self):
        """>183 members forces multi-MRP registration (k=8 tree, 200 hosts
        would be needed; we verify the chunk path with a smaller MTU)."""
        cl = Cluster.fat_tree_cluster(4)
        fabric = cl.fabric
        qps = {ip: cl.ctx(ip).create_qp() for ip in cl.host_ips}
        group = fabric.create_group(qps, leader_ip=1)
        # Monkeypatch chunking to force 4 packets for 16 members.
        import repro.core.mrp as mrp_mod
        orig = mrp_mod.chunk_records
        mrp_mod.chunk_records = lambda recs, per_packet=5: orig(recs, 5)
        try:
            fabric.register_sync(group)
        finally:
            mrp_mod.chunk_records = orig
        assert group.registered
        result_mft = fabric.accelerators["edge0_0"].mft_of(group.mcst_id)
        assert result_mft is not None
