"""Accelerator: MDT construction, replication, bridging, filtering."""

import pytest

from repro import constants
from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.core.accelerator import AcceleratorConfig
from repro.net.packet import Packet, PacketType, RdmaOp


def _registered_group(cluster, members=None, leader=None, mr_info=None):
    members = members or cluster.host_ips
    qps = {ip: cluster.ctx(ip).create_qp() for ip in members}
    group = cluster.fabric.create_group(qps, leader_ip=leader or members[0],
                                        mr_info=mr_info)
    cluster.fabric.register_sync(group)
    return group, qps


class TestClassify:
    def test_classifier_matrix(self, testbed):
        accel = testbed.fabric.accelerators["sw0"]
        gid = constants.MCSTID_BASE
        yes = [
            Packet(PacketType.MRP, 1, gid),
            Packet(PacketType.DATA, 1, gid),
            Packet(PacketType.ACK, 2, gid),
            Packet(PacketType.NACK, 2, gid),
            Packet(PacketType.CNP, 2, gid),
        ]
        no = [
            Packet(PacketType.DATA, 1, 2),
            Packet(PacketType.ACK, 1, 2),
            Packet(PacketType.MRP_CONFIRM, 2, 1),
            Packet(PacketType.CTRL, 1, 2),
        ]
        assert all(accel.classify(p) for p in yes)
        assert not any(accel.classify(p) for p in no)


class TestMdtConstruction:
    def test_star_mdt_single_switch(self, testbed):
        group, _ = _registered_group(testbed)
        mdt = list(testbed.fabric.mdt_switches(group.mcst_id))
        assert len(mdt) == 1

    def test_fat_tree_mdt_is_minimal_tree(self, fat_tree_cluster):
        """Members in two racks of one pod: the MDT must touch exactly
        both edges + one agg, not the cores."""
        cl = fat_tree_cluster
        group, _ = _registered_group(cl, members=[1, 2, 3, 4], leader=1)
        names = sorted(a.switch.name
                       for a in cl.fabric.mdt_switches(group.mcst_id))
        assert names[0].startswith("agg0")
        assert names[1:] == ["edge0_0", "edge0_1"]

    def test_mdt_reuses_ports_single_branch(self, fat_tree_cluster):
        """Paper Fig. 2 (A): nodes sharing a downstream path share one
        Path Table entry until the tree must branch."""
        cl = fat_tree_cluster
        group, _ = _registered_group(cl, members=[1, 3, 4], leader=1)
        edge0 = cl.fabric.accelerators["edge0_0"].mft_of(group.mcst_id)
        # hosts 3,4 are both behind the same uplink: exactly one uplink
        # entry + host 1's port (ingress) = 2 entries.
        assert len(edge0.entries()) == 2

    def test_group_level_load_balancing(self, fat_tree_cluster):
        """Different groups spread across ECMP uplinks (§III-C: 'the
        port with the lowest utilization')."""
        cl = fat_tree_cluster
        edge = cl.fabric.accelerators["edge0_0"]
        uplinks = set()
        for _ in range(6):
            group, _ = _registered_group(cl, members=[1, 5], leader=1)
            mft = edge.mft_of(group.mcst_id)
            uplinks.update(e.port for e in mft.entries()
                           if not edge.switch.is_host_port(e.port))
        assert len(uplinks) == 2  # both ECMP uplinks used across groups


class TestBridging:
    def test_receiver_sees_own_connection(self, testbed):
        """Connection bridging (Fig. 4): dstIP/dstQP rewritten per
        receiver, srcIP becomes the McstID."""
        group, qps = _registered_group(testbed)
        # Snapshot header fields at interception time: the packet pool
        # recycles consumed packets, so retaining live Packet objects
        # across events would observe a later reincarnation.
        seen = {}
        for ip in (2, 3, 4):
            orig = qps[ip].handle_packet

            def spy(pkt, _ip=ip, _orig=orig):
                seen.setdefault(_ip, (pkt.dst_ip, pkt.dst_qp, pkt.src_ip))
                _orig(pkt)

            qps[ip].handle_packet = spy
        qps[1].post_send(100)
        testbed.run()
        for ip in (2, 3, 4):
            dst_ip, dst_qp, src_ip = seen[ip]
            assert dst_ip == ip
            assert dst_qp == qps[ip].qpn
            assert src_ip == group.mcst_id

    def test_write_reth_rewritten_per_receiver(self, testbed):
        mrs = {ip: testbed.ctx(ip).reg_mr(1 << 20) for ip in (2, 3, 4)}
        group, qps = _registered_group(
            testbed, mr_info={ip: (mr.addr, mr.rkey)
                              for ip, mr in mrs.items()})
        qps[1].post_write(8192, vaddr=0, rkey=0)
        testbed.run()
        for ip in (2, 3, 4):
            table = testbed.ctx(ip).mr_table
            assert table.write_hits == 1
            assert table.write_misses == 0

    def test_unregistered_group_dropped(self, testbed):
        accel = testbed.fabric.accelerators["sw0"]
        pkt = Packet(PacketType.DATA, 1, constants.MCSTID_BASE + 999,
                     payload=64)
        accel.process(pkt, 0)
        testbed.run()  # the admit stage models the accelerator delay
        assert accel.unregistered_drops == 1


class TestReplication:
    def test_ingress_pruned(self, testbed):
        """The sender never receives its own multicast."""
        group, qps = _registered_group(testbed)
        qps[1].post_send(4096)
        testbed.run()
        assert qps[1].recv.bytes_delivered == 0
        assert testbed.topo.nic(1).rx_unmatched == 0

    def test_replication_count(self, testbed):
        group, qps = _registered_group(testbed)
        accel = testbed.fabric.accelerators["sw0"]
        qps[1].post_send(constants.MTU_BYTES * 10)
        testbed.run()
        assert accel.replicas_out == 30  # 10 packets x 3 receivers

    def test_retransmit_filter_suppresses_duplicates(self):
        """Loss on one MDT branch only (middle switches of a fat-tree):
        the unaffected branch has already ACKed the retransmitted PSNs,
        so the replicating switch must not re-send them there."""
        cl = Cluster.fat_tree_cluster(4)
        cl.topo.set_loss_rate(5e-3)  # agg/core only; host 2 is same-rack
        group, qps = _registered_group(cl, members=[1, 2, 3], leader=1)
        delivered = {ip: 0 for ip in (2, 3)}
        for ip in (2, 3):
            qps[ip].on_message = (
                lambda mid, sz, now, meta, _ip=ip:
                delivered.__setitem__(_ip, delivered[_ip] + sz))
        size = constants.MTU_BYTES * 800
        qps[1].post_send(size)
        cl.run()
        filtered = sum(a.retransmits_filtered
                       for a in cl.fabric.accelerators.values())
        assert all(v == size for v in delivered.values())
        assert filtered > 0

    def test_filter_disabled_forwards_duplicates(self):
        cl = Cluster.fat_tree_cluster(
            4, accel_config=AcceleratorConfig(retransmit_filter=False))
        cl.topo.set_loss_rate(5e-3)
        group, qps = _registered_group(cl, members=[1, 2, 3], leader=1)
        size = constants.MTU_BYTES * 800
        qps[1].post_send(size)
        cl.run()
        filtered = sum(a.retransmits_filtered
                       for a in cl.fabric.accelerators.values())
        assert filtered == 0
        # delivery still exactly-once at the app: the RNIC discards dups
        for ip in (2, 3):
            assert qps[ip].recv.bytes_delivered == size


class TestFeedbackPath:
    def test_sender_receives_single_ack_stream(self, testbed):
        group, qps = _registered_group(testbed)
        qps[1].post_send(constants.MTU_BYTES * 100)
        testbed.run()
        sender = qps[1]
        total_recv_acks = sum(qps[ip].acks_sent for ip in (2, 3, 4))
        assert sender.acks_received < total_recv_acks  # aggregated
        assert sender.send_idle

    def test_sender_completion_implies_all_delivered(self, testbed):
        group, qps = _registered_group(testbed)
        events = []
        for ip in (2, 3, 4):
            qps[ip].on_message = (
                lambda mid, sz, now, meta, _ip=ip: events.append(("recv", _ip, now)))
        qps[1].post_send(
            1 << 20, on_complete=lambda mid, now: events.append(("done", 1, now)))
        testbed.run()
        done_t = [t for k, _, t in events if k == "done"][0]
        assert all(t <= done_t for k, _, t in events if k == "recv")

    def test_feedback_without_observed_source_dropped(self, testbed):
        """ACKs for a registered group with no data yet cannot be
        rewritten (no source recorded) and must not crash."""
        group, qps = _registered_group(testbed)
        accel = testbed.fabric.accelerators["sw0"]
        ack = Packet(PacketType.ACK, 2, group.mcst_id, psn=5)
        accel.process(ack, 1)
        testbed.run()
        assert qps[1].acks_received == 0
