"""Dynamic membership: incremental MRP deltas, epochs, failure pruning."""

import pytest

from repro.apps import Cluster
from repro.check import InvariantMonitor
from repro.collectives import CepheusBcast
from repro.core.fallback import SafeguardMonitor
from repro.errors import GroupError, RegistrationError
from repro.net.failures import FailureInjector


def _installed(fabric):
    return sum(a.mrp_records_installed for a in fabric.accelerators.values())


def _removed(fabric):
    return sum(a.mrp_records_removed for a in fabric.accelerators.values())


def _group_of(cl, n_members):
    algo = CepheusBcast(cl, cl.host_ips[:n_members])
    algo.prepare()
    return algo


class TestJoin:
    def test_join_installs_strictly_fewer_records_than_full(self, testbed8):
        algo = _group_of(testbed8, 4)
        fabric = testbed8.fabric
        full = _installed(fabric)
        mm = fabric.membership(algo.group)
        ip = testbed8.host_ips[4]
        mm.join_sync(ip, testbed8.ctx(ip).create_qp())
        delta = _installed(fabric) - full
        assert 0 < delta < full
        assert ip in algo.group.members

    def test_join_bumps_epoch_and_logs(self, testbed8):
        algo = _group_of(testbed8, 4)
        mm = testbed8.fabric.membership(algo.group)
        assert algo.group.epoch == 0
        ip = testbed8.host_ips[4]
        mm.join_sync(ip, testbed8.ctx(ip).create_qp())
        assert algo.group.epoch == 1
        assert mm.epoch_log == [(1, "join", ip)]

    def test_joiner_receives_next_message_not_the_past(self, testbed8):
        algo = _group_of(testbed8, 4)
        fabric = testbed8.fabric
        src = algo.group.members[algo.group.current_source]
        src.post_send(64_000)
        testbed8.sim.run()

        mm = fabric.membership(algo.group)
        ip = testbed8.host_ips[4]
        qp = testbed8.ctx(ip).create_qp()
        mm.join_sync(ip, qp)
        got = []
        qp.on_message = lambda mid, sz, now, meta: got.append(sz)
        src.post_send(32_000)
        testbed8.sim.run()
        assert got == [32_000]   # the pre-join message is not replayed

    def test_join_on_fat_tree_patches_only_the_branch(self, fat_tree_cluster):
        cl = fat_tree_cluster
        algo = _group_of(cl, 5)
        fabric = cl.fabric
        full = _installed(fabric)
        mm = fabric.membership(algo.group)
        ip = cl.host_ips[5]
        mm.join_sync(ip, cl.ctx(ip).create_qp())
        assert _installed(fabric) - full < full

    def test_duplicate_join_rejected(self, testbed8):
        algo = _group_of(testbed8, 4)
        mm = testbed8.fabric.membership(algo.group)
        ip = testbed8.host_ips[1]   # already a member
        with pytest.raises(GroupError):
            mm.join(ip, testbed8.ctx(ip).create_qp())


class TestLeave:
    def test_leave_removes_leaf_entry_and_counts(self, testbed8):
        algo = _group_of(testbed8, 4)
        fabric = testbed8.fabric
        mm = fabric.membership(algo.group)
        victim = testbed8.host_ips[2]
        sw, port = testbed8.topo.leaf_of(victim)
        mft = fabric.accelerators[sw.name].mft_of(algo.group.mcst_id)
        assert mft.entry(port) is not None
        mm.leave_sync(victim)
        assert mft.entry(port) is None
        assert victim not in algo.group.members
        assert _removed(fabric) >= 1

    def test_leader_and_source_cannot_leave(self, testbed8):
        algo = _group_of(testbed8, 4)
        mm = testbed8.fabric.membership(algo.group)
        with pytest.raises(GroupError):
            mm.leave(algo.group.leader_ip)

    def test_group_never_shrinks_below_two(self, testbed8):
        algo = _group_of(testbed8, 3)
        mm = testbed8.fabric.membership(algo.group)
        mm.leave_sync(testbed8.host_ips[1])
        with pytest.raises(GroupError):
            mm.leave(testbed8.host_ips[2])

    def test_delivery_continues_after_leave(self, testbed8):
        algo = _group_of(testbed8, 4)
        mm = testbed8.fabric.membership(algo.group)
        got = {ip: 0 for ip in algo.group.receivers()}
        for ip in got:
            def h(mid, sz, now, meta, _ip=ip):
                got[_ip] += 1
            algo.group.members[ip].on_message = h
        src = algo.group.members[algo.group.current_source]
        victim = testbed8.host_ips[2]
        mm.leave_sync(victim)
        src.post_send(64_000)
        testbed8.sim.run()
        for ip, n in got.items():
            assert n == (0 if ip == victim else 1)


class TestFailurePruning:
    def test_dead_receiver_pruned_and_aggregate_unsticks(self, testbed8):
        """The headline scenario: a receiver crashes mid-broadcast; the
        missed-feedback detector prunes it, the leaf re-evaluates the
        min-AckPSN aggregate, and the transfer completes for everyone
        else."""
        cl = testbed8
        algo = _group_of(cl, 5)
        fabric = cl.fabric
        monitor = InvariantMonitor()
        monitor.attach_cluster(cl)
        try:
            mm = fabric.membership(algo.group)
            mm.start_failure_detector(interval=150e-6, misses=3)
            injector = FailureInjector(cl.topo)
            victim = cl.host_ips[3]
            done = []
            src = algo.group.members[algo.group.current_source]

            def crash():
                sw, port = cl.topo.leaf_of(victim)
                injector.fail_link(sw, port)

            cl.sim.schedule(20e-6, crash)
            src.post_send(256_000, on_complete=lambda mid, now: done.append(now))
            cl.sim.run(until=cl.sim.now + 0.02)
            mm.stop_failure_detector()

            assert done, "transfer never completed: aggregate still stuck"
            assert victim in mm.pruned
            assert victim not in algo.group.members
            assert src.send_idle
            monitor.check_mft_consistency(fabric, expect_connected=True,
                                          injector=injector)
            assert monitor.violations == []
        finally:
            monitor.detach()

    def test_healthy_receivers_not_pruned_while_source_blocked(self, testbed8):
        """A caught-up receiver's AckPSN plateaus while the source waits
        on the dead one — the detector must not evict it."""
        cl = testbed8
        algo = _group_of(cl, 5)
        mm = cl.fabric.membership(algo.group)
        mm.start_failure_detector(interval=150e-6, misses=3)
        injector = FailureInjector(cl.topo)
        victim = cl.host_ips[3]
        src = algo.group.members[algo.group.current_source]
        sw, port = cl.topo.leaf_of(victim)
        cl.sim.schedule(20e-6, injector.fail_link, sw, port)
        src.post_send(256_000)
        cl.sim.run(until=cl.sim.now + 0.02)
        mm.stop_failure_detector()
        assert mm.pruned == {victim}

    def test_idle_source_produces_no_prunes(self, testbed8):
        algo = _group_of(testbed8, 4)
        mm = testbed8.fabric.membership(algo.group)
        mm.start_failure_detector(interval=150e-6, misses=3)
        testbed8.sim.run(until=testbed8.sim.now + 0.005)
        mm.stop_failure_detector()
        assert mm.pruned == set()


class TestDeltaFailure:
    def test_unconfirmed_join_raises_and_trips_safeguard(self, testbed8):
        algo = _group_of(testbed8, 4)
        fabric = testbed8.fabric
        mm = fabric.membership(algo.group)
        src = algo.group.members[algo.group.current_source]
        mm.safeguard = SafeguardMonitor(testbed8.sim, src, expected_bps=90e9)
        ip = testbed8.host_ips[4]
        # Silence the joiner's control plane: its confirmation never comes.
        testbed8.topo.nic(ip).control_handler = None
        with pytest.raises(RegistrationError, match="timeout"):
            mm.join_sync(ip, testbed8.ctx(ip).create_qp())
        assert mm.delta_failures and mm.delta_failures[0][0] == "join"
        assert mm.safeguard.triggered
        assert "membership join" in mm.safeguard.trigger_reason

    def test_delta_retry_masks_one_lost_window(self, testbed8):
        algo = _group_of(testbed8, 4)
        fabric = testbed8.fabric
        mm = fabric.membership(algo.group)
        mm.delta_timeout = 200e-6
        ip = testbed8.host_ips[4]
        nic = testbed8.topo.nic(ip)
        saved = nic.control_handler
        nic.control_handler = None
        # Restore the handler before the retry fires: the re-sent delta
        # must succeed.
        testbed8.sim.schedule(
            150e-6, lambda: setattr(nic, "control_handler", saved))
        mm.join_sync(ip, testbed8.ctx(ip).create_qp())
        assert ip in algo.group.members
        assert not mm.delta_failures


class TestLifecycle:
    def test_unregister_recycles_mcst_id_and_manager(self, testbed8):
        fabric = testbed8.fabric
        algo = _group_of(testbed8, 4)
        gid = algo.group.mcst_id
        mm = fabric.membership(algo.group)
        assert fabric.membership(algo.group) is mm   # cached
        fabric.unregister(algo.group)
        assert gid not in fabric.groups
        assert fabric.alloc.allocate() == gid        # recycled, lowest-first

    def test_invariants_clean_across_epochs(self, testbed8):
        cl = testbed8
        monitor = InvariantMonitor()
        monitor.attach_cluster(cl)
        try:
            algo = _group_of(cl, 4)
            mm = cl.fabric.membership(algo.group)
            src = algo.group.members[algo.group.current_source]
            src.post_send(64_000)
            cl.sim.run()
            ip5 = cl.host_ips[4]
            mm.join_sync(ip5, cl.ctx(ip5).create_qp())
            src.post_send(64_000)
            cl.sim.run()
            mm.leave_sync(cl.host_ips[2])
            src.post_send(64_000)
            cl.sim.run()
            monitor.check_mft_consistency(cl.fabric, expect_connected=True)
            assert monitor.violations == []
            assert algo.group.epoch == 2
        finally:
            monitor.detach()
