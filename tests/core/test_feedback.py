"""FeedbackEngine unit tests — no simulator, pure state machine.

These pin the three §III-D guarantees:
1. an aggregated ACK(p) is emitted only when min over downstream paths
   reaches p (and only on trigger-port progress);
2. a NACK(e) is released only once every path acknowledged e-1
   (no inter-covering);
3. CNPs pass only from the most-congested port within an aging window.
"""

import pytest

from repro import constants
from repro.core.feedback import FeedbackConfig, FeedbackEngine
from repro.core.mft import Mft, PathEntry
from repro.net.packet import PacketType

GID = constants.MCSTID_BASE


def make_mft(ports=(0, 1, 2), upstream=7):
    mft = Mft(GID, 8)
    mft.add_entry(PathEntry(port=upstream, is_host=False))
    mft.ack_out_port = upstream
    for p in ports:
        mft.add_entry(PathEntry(port=p, is_host=True))
    return mft


class TestAckAggregation:
    def test_first_acks_do_not_emit_until_all_paths_heard(self):
        eng, mft = FeedbackEngine(), make_mft()
        assert eng.on_ack(mft, 0, 5) == []
        assert eng.on_ack(mft, 1, 5) == []

    def test_emit_when_min_advances(self):
        eng, mft = FeedbackEngine(), make_mft()
        eng.on_ack(mft, 0, 5)
        eng.on_ack(mft, 1, 5)
        out = eng.on_ack(mft, 2, 5)
        assert out == [(PacketType.ACK, 5)]
        assert mft.agg_ack_psn == 5

    def test_aggregate_is_min_not_latest(self):
        eng, mft = FeedbackEngine(), make_mft()
        eng.on_ack(mft, 0, 9)
        eng.on_ack(mft, 1, 3)
        out = eng.on_ack(mft, 2, 20)
        assert out == [(PacketType.ACK, 3)]

    def test_guarantee_all_received_up_to_aggregate(self):
        """Invariant 2 of DESIGN.md: agg ACK(p) => every path acked >= p."""
        eng, mft = FeedbackEngine(), make_mft()
        import random
        rng = random.Random(0)
        emitted = []
        for _ in range(300):
            port = rng.choice([0, 1, 2])
            e = mft.entry(port)
            psn = e.ack_psn + rng.randint(1, 4)
            for ptype, p in eng.on_ack(mft, port, psn):
                if ptype == PacketType.ACK:
                    emitted.append(p)
                    assert all(en.ack_psn >= p for en in
                               mft.iter_downstream(mft.ack_out_port))
        assert emitted == sorted(emitted)  # aggregate is monotonic

    def test_trigger_port_suppresses_non_min_acks(self):
        eng, mft = FeedbackEngine(), make_mft(ports=(0, 1))
        eng.on_ack(mft, 0, 10)
        eng.on_ack(mft, 1, 5)      # emits 5, tri -> port 1
        assert mft.tri_port == 1
        # fast path keeps ACKing: no emissions, no tri change
        assert eng.on_ack(mft, 0, 11) == []
        assert eng.on_ack(mft, 0, 12) == []
        # min-owner progress emits
        assert eng.on_ack(mft, 1, 12) == [(PacketType.ACK, 12)]

    def test_tie_does_not_deadlock(self):
        """Regression: both paths end at the same PSN; the trigger port
        must follow the min owner or the final aggregate is lost."""
        eng, mft = FeedbackEngine(), make_mft(ports=(0, 1))
        eng.on_ack(mft, 0, 3)
        eng.on_ack(mft, 1, 3)      # emits 3
        eng.on_ack(mft, 0, 7)      # port 0 done
        out = eng.on_ack(mft, 1, 7)
        assert (PacketType.ACK, 7) in out

    def test_ablation_no_trigger_emits_per_incoming_ack(self):
        """Without the Trigger Condition the naive switch re-emits the
        aggregate for every incoming ACK — the ACK-explosion baseline."""
        eng = FeedbackEngine(FeedbackConfig(trigger_condition=False))
        mft = make_mft(ports=(0, 1))
        eng.on_ack(mft, 0, 1)
        eng.on_ack(mft, 1, 1)
        count = 0
        for psn in range(2, 10):
            count += len(eng.on_ack(mft, 0, psn))
            count += len(eng.on_ack(mft, 1, psn))
        # 8 genuine advances + 8 duplicate re-emissions.
        assert count == 16

    def test_trigger_condition_halves_emissions_vs_naive(self):
        def run(trigger):
            eng = FeedbackEngine(FeedbackConfig(trigger_condition=trigger))
            mft = make_mft(ports=(0, 1))
            for psn in range(0, 50):
                eng.on_ack(mft, 0, psn)
                eng.on_ack(mft, 1, psn)
            return eng.acks_out

        assert run(True) < run(False)

    def test_ack_on_unknown_port_ignored(self):
        eng, mft = FeedbackEngine(), make_mft(ports=(0,))
        assert eng.on_ack(mft, 5, 3) == []

    def test_ack_counters(self):
        eng, mft = FeedbackEngine(), make_mft(ports=(0,))
        eng.on_ack(mft, 0, 1)
        assert eng.acks_in == 1 and eng.acks_out == 1


class TestNackAggregation:
    def test_nack_released_when_all_below_acked(self):
        eng, mft = FeedbackEngine(), make_mft(ports=(0, 1))
        # port 0 lost PSN 4: NACK(4) implies it has up to 3.
        out = eng.on_nack(mft, 0, 4)
        assert out == []           # port 1 not heard from yet
        out = eng.on_ack(mft, 1, 3)
        assert out == [(PacketType.NACK, 4)]
        assert mft.me_psn is None  # history discarded after release

    def test_no_inter_covering(self):
        """R1 loses p4, R2 loses p9: the forwarded NACK must carry 4,
        never 9 (invariant 3)."""
        eng, mft = FeedbackEngine(), make_mft(ports=(0, 1))
        out = []
        out += eng.on_nack(mft, 1, 9)   # R2's later loss arrives first
        out += eng.on_nack(mft, 0, 4)   # R1's earlier loss
        nacks = [p for t, p in out if t == PacketType.NACK]
        assert nacks == [4]

    def test_min_epsn_tracked(self):
        # Port 2 stays silent, so neither NACK can be released yet and
        # MePSN must hold the minimum of the two ePSNs.
        eng, mft = FeedbackEngine(), make_mft(ports=(0, 1, 2))
        eng.on_nack(mft, 0, 9)
        eng.on_nack(mft, 1, 4)
        assert mft.me_psn == 4

    def test_nack_implies_cumulative_ack(self):
        eng, mft = FeedbackEngine(), make_mft(ports=(0, 1))
        eng.on_nack(mft, 0, 6)
        assert mft.entry(0).ack_psn == 5

    def test_renack_after_release(self):
        eng, mft = FeedbackEngine(), make_mft(ports=(0, 1))
        eng.on_nack(mft, 0, 4)
        eng.on_ack(mft, 1, 3)            # releases NACK(4)
        out = eng.on_nack(mft, 0, 4)     # retransmission lost again
        assert (PacketType.NACK, 4) in out

    def test_ablation_forwards_immediately(self):
        eng = FeedbackEngine(FeedbackConfig(nack_aggregation=False))
        mft = make_mft(ports=(0, 1))
        out = eng.on_nack(mft, 1, 9)
        assert out == [(PacketType.NACK, 9)]  # inter-covering hazard


class TestCnpFilter:
    def test_first_cnp_passes(self):
        eng, mft = FeedbackEngine(), make_mft()
        assert eng.on_cnp(mft, 0, 0.0) == [(PacketType.CNP, 0)]

    def test_less_congested_port_filtered(self):
        eng, mft = FeedbackEngine(), make_mft()
        for _ in range(5):
            eng.on_cnp(mft, 0, 1e-6)
        assert eng.on_cnp(mft, 1, 2e-6) == []

    def test_most_congested_keeps_passing(self):
        eng, mft = FeedbackEngine(), make_mft()
        eng.on_cnp(mft, 1, 0.0)
        for _ in range(4):
            eng.on_cnp(mft, 0, 1e-6)   # port 0 becomes the hot link
        assert mft.cnp_counters[0] > mft.cnp_counters[1]
        assert eng.on_cnp(mft, 0, 2e-6) == [(PacketType.CNP, 0)]

    def test_aging_window_resets(self):
        eng = FeedbackEngine(FeedbackConfig(cnp_window=100e-6))
        mft = make_mft()
        for _ in range(10):
            eng.on_cnp(mft, 0, 1e-6)
        # after the window, the bottleneck can move to port 1
        out = eng.on_cnp(mft, 1, 500e-6)
        assert out == [(PacketType.CNP, 0)]
        assert mft.cnp_counters == {1: 1}

    def test_ablation_passes_everything(self):
        eng = FeedbackEngine(FeedbackConfig(cnp_filter=False))
        mft = make_mft()
        outs = [eng.on_cnp(mft, p, 0.0) for p in (0, 1, 2, 0, 1, 2)]
        assert all(o == [(PacketType.CNP, 0)] for o in outs)

    def test_counters(self):
        eng, mft = FeedbackEngine(), make_mft()
        eng.on_cnp(mft, 0, 0.0)
        eng.on_cnp(mft, 0, 1e-6)   # port 0 now clearly dominates
        eng.on_cnp(mft, 1, 2e-6)   # filtered: less congested
        assert eng.cnps_in == 3 and eng.cnps_out == 2
