"""Cross-module integration scenarios."""

import pytest

from repro import constants
from repro.apps import Cluster
from repro.collectives import CepheusBcast


class TestMultiGroupCoexistence:
    def test_many_groups_share_the_fabric(self, testbed8):
        """Several MGs with different member sets run concurrently;
        every stream stays isolated (McstID-indexed MFTs)."""
        cl = testbed8
        specs = [
            ([1, 2, 3], 1),
            ([4, 5, 6], 4),
            ([1, 4, 7, 8], 7),
        ]
        algos = []
        for members, root in specs:
            algo = CepheusBcast(cl, members, root)
            algo.prepare()
            algos.append(algo)
        results = {}
        for i, algo in enumerate(algos):
            counts = {}
            for ip in algo.ranks:
                if ip == algo.root:
                    continue
                algo.qps[ip].on_message = (
                    lambda mid, sz, now, meta, _ip=ip, _c=counts:
                    _c.__setitem__(_ip, _c.get(_ip, 0) + sz))
            results[i] = counts
            algo.qps[algo.root].post_send((i + 1) * constants.MTU_BYTES * 10)
        cl.run()
        for i, (members, root) in enumerate(specs):
            expected = (i + 1) * constants.MTU_BYTES * 10
            for ip in members:
                if ip == root:
                    continue
                assert results[i][ip] == expected, (i, ip)

    def test_group_count_on_switch(self, testbed8):
        cl = testbed8
        for root in (1, 2, 3):
            CepheusBcast(cl, cl.host_ips, root).prepare()
        accel = cl.fabric.accelerators["sw0"]
        assert len(accel.table) == 3

    def test_unicast_unaffected_by_multicast(self, testbed):
        """A unicast flow coexists with a multicast on the same fabric
        and still completes with full delivery."""
        cl = testbed
        algo = CepheusBcast(cl, [1, 2, 3])
        algo.prepare()
        got = {}
        cl.qp_to(4, 1).on_message = \
            lambda mid, sz, now, meta: got.setdefault("uni", sz)
        cl.qp_to(1, 4).post_send(1 << 20)
        algo.qps[1].post_send(1 << 20)
        cl.run()
        assert got["uni"] == 1 << 20
        assert algo.qps[2].recv.bytes_delivered == 1 << 20


class TestScaleRegression:
    def test_64_member_multicast_on_k8(self):
        """The Fig. 12 quick-scale configuration end-to-end."""
        cl = Cluster.fat_tree_cluster(8)
        members = cl.host_ips[:64]
        algo = CepheusBcast(cl, members)
        r = algo.run(1 << 20)
        assert len(r.recv_times) == 63
        spread = max(r.recv_times.values()) - min(r.recv_times.values())
        assert spread < 20e-6  # all racks finish nearly together
        # hierarchical state: no MFT anywhere exceeds the radix
        for accel in cl.fabric.mdt_switches(algo.group.mcst_id):
            assert len(accel.mft_of(algo.group.mcst_id).path_table) <= 16

    def test_full_k4_fabric_membership(self):
        """All 16 hosts of a k=4 fat-tree in one group."""
        cl = Cluster.fat_tree_cluster(4)
        algo = CepheusBcast(cl, cl.host_ips)
        r = algo.run(4 * constants.MTU_BYTES)
        assert len(r.recv_times) == 15


class TestWriteMulticastIntegration:
    def test_concurrent_write_streams(self, testbed):
        """Multicast WRITEs from two groups land in the right MRs."""
        cl = testbed
        mrs_a = {ip: cl.ctx(ip).reg_mr(1 << 20) for ip in (2, 3)}
        mrs_b = {ip: cl.ctx(ip).reg_mr(1 << 20) for ip in (3, 4)}
        qps_a = {ip: cl.ctx(ip).create_qp() for ip in (1, 2, 3)}
        qps_b = {ip: cl.ctx(ip).create_qp() for ip in (2, 3, 4)}
        ga = cl.fabric.create_group(
            qps_a, leader_ip=1,
            mr_info={ip: (mr.addr, mr.rkey) for ip, mr in mrs_a.items()})
        gb = cl.fabric.create_group(
            qps_b, leader_ip=2,
            mr_info={ip: (mr.addr, mr.rkey) for ip, mr in mrs_b.items()})
        cl.fabric.register_sync(ga)
        cl.fabric.register_sync(gb)
        qps_a[1].post_write(8192, vaddr=0, rkey=0)
        qps_b[2].post_write(8192, vaddr=0, rkey=0)
        cl.run()
        assert cl.ctx(2).mr_table.write_hits == 1   # group A only
        assert cl.ctx(3).mr_table.write_hits == 2   # both groups
        assert cl.ctx(4).mr_table.write_hits == 1   # group B only
        assert all(cl.ctx(ip).mr_table.write_misses == 0
                   for ip in (2, 3, 4))


class TestCongestedReceiver:
    def test_multicast_paced_by_slowest_receiver(self, testbed8):
        """Single-rate CC: a congested receiver drags the whole group
        to its rate (the paper's §III-D design choice)."""
        cl = testbed8
        algo = CepheusBcast(cl, [1, 2, 3, 4])
        algo.prepare()
        # Host 2's downlink also serves a fat background unicast flow.
        cl.qp_to(8, 2).post_send(64 << 20)
        r = algo.run(32 << 20)
        # The whole group lands well below line rate, together.
        assert r.goodput_gbps() < 75
        spread = max(r.recv_times.values()) - min(r.recv_times.values())
        assert spread < 0.2 * r.jct

    def test_pfc_backpressures_whole_group(self):
        """With ECN disabled, PFC pauses the replication upstream and
        the transfer still completes losslessly (§III-D Flow Control)."""
        from repro.net import SwitchConfig

        big = constants.SWITCH_QUEUE_BYTES
        cl = Cluster.testbed(
            8, switch_config=SwitchConfig(ecn_kmin=big + 1, ecn_kmax=big + 2))
        algo = CepheusBcast(cl, [1, 2, 3, 4])
        algo.prepare()
        cl.qp_to(8, 2).post_send(64 << 20)
        r = algo.run(32 << 20)
        sw = cl.topo.switches[0]
        assert sw.taildrops == 0
        assert sw.pfc.pause_frames_sent > 0
        assert len(r.recv_times) == 3
