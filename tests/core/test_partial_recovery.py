"""Fine-grained fallback: partial registration + survivor re-forming."""

import pytest

from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.errors import RegistrationError
from repro.net import FailureInjector


class TestPartialRegistration:
    def test_all_alive_returns_empty_missing(self, testbed):
        qps = {ip: testbed.ctx(ip).create_qp() for ip in testbed.host_ips}
        g = testbed.fabric.create_group(qps, leader_ip=1)
        missing = testbed.fabric.register_partial_sync(g)
        assert missing == set()
        assert g.registered

    def test_silent_member_reported(self, testbed):
        qps = {ip: testbed.ctx(ip).create_qp() for ip in testbed.host_ips}
        g = testbed.fabric.create_group(qps, leader_ip=1)
        testbed.topo.nic(3).control_handler = None
        missing = testbed.fabric.register_partial_sync(g, timeout=1e-3)
        assert missing == {3}
        assert g.registered  # partial success is success

    def test_everyone_silent_fails(self, testbed):
        qps = {ip: testbed.ctx(ip).create_qp() for ip in testbed.host_ips}
        g = testbed.fabric.create_group(qps, leader_ip=1)
        for ip in (2, 3, 4):
            testbed.topo.nic(ip).control_handler = None
        with pytest.raises(RegistrationError):
            testbed.fabric.register_partial_sync(g, timeout=1e-3)

    def test_unregister_frees_switch_state(self, testbed):
        qps = {ip: testbed.ctx(ip).create_qp() for ip in testbed.host_ips}
        g = testbed.fabric.create_group(qps, leader_ip=1)
        testbed.fabric.register_sync(g)
        accel = testbed.fabric.accelerators["sw0"]
        assert accel.mft_of(g.mcst_id) is not None
        testbed.fabric.unregister(g)
        assert accel.mft_of(g.mcst_id) is None
        assert g.mcst_id not in testbed.fabric.groups


class TestPartialRecovery:
    def _run(self, fail_ip):
        cl = Cluster.fat_tree_cluster(4)
        inj = FailureInjector(cl.topo)
        members = [1, 2, 3, 5]
        algo = CepheusBcast(cl, members, safeguard=True,
                            expected_bps=90e9, recovery="partial")
        algo.prepare()
        inj.fail_host_link(fail_ip, at=100e-6)
        result = algo.run(16 << 20)
        return cl, algo, result

    def test_survivors_served_in_network(self):
        cl, algo, r = self._run(fail_ip=5)
        assert algo.fell_back
        assert algo.unreachable == {5}
        assert set(r.recv_times) == {2, 3}
        assert r.algorithm == "cepheus+partial"
        assert r.sender_done is not None

    def test_simulation_drains_cleanly(self):
        cl, algo, r = self._run(fail_ip=5)
        assert cl.sim.pending == 0 or cl.sim.peek_next_time() is None

    def test_recovered_group_is_fresh(self):
        cl, algo, r = self._run(fail_ip=5)
        assert 5 not in algo.group.members
        assert set(algo.group.members) == {1, 2, 3}

    def test_invalid_recovery_mode(self, testbed):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            CepheusBcast(testbed, testbed.host_ips, recovery="seance")

    def test_healthy_run_untouched_by_mode(self, testbed):
        algo = CepheusBcast(testbed, testbed.host_ips, safeguard=True,
                            recovery="partial")
        r = algo.run(8 << 20)
        assert not algo.fell_back
        assert algo.unreachable == set()
        assert r.algorithm == "cepheus"
