"""MRP controller recovery: confirmation timeouts, retries, switch errors."""

import pytest

from repro.apps import Cluster
from repro.core.accelerator import AcceleratorConfig
from repro.core.mrp import MrpController
from repro.errors import RegistrationError


def _start_registration(cl, **ctl_kwargs):
    fabric = cl.fabric
    qps = {ip: cl.ctx(ip).create_qp() for ip in cl.host_ips}
    group = fabric.create_group(qps, leader_ip=cl.host_ips[0])
    outcome = {"ok": False, "reason": None}
    ctl = MrpController(
        cl.sim, group, cl.topo.nic(group.leader_ip),
        on_success=lambda: outcome.update(ok=True),
        on_failure=lambda r: outcome.update(reason=r),
        **ctl_kwargs,
    )
    fabric.agents[group.leader_ip].attach_controller(ctl)
    ctl.start()
    return group, ctl, outcome


class TestTimeout:
    def test_silent_member_times_out_without_retries(self, testbed):
        testbed.topo.nic(3).control_handler = None   # member 3 never confirms
        group, ctl, outcome = _start_registration(testbed, timeout=500e-6)
        testbed.sim.run()
        assert not outcome["ok"]
        assert "timeout" in outcome["reason"]
        assert ctl.resends == 0
        assert "[3]" in outcome["reason"]   # names the silent member

    def test_retry_resends_and_recovers(self, testbed):
        nic = testbed.topo.nic(3)
        saved = nic.control_handler
        nic.control_handler = None
        group, ctl, outcome = _start_registration(
            testbed, timeout=500e-6, retries=1)
        # Heal the member before the retry window fires: the re-sent MRP
        # packets must complete the registration.
        testbed.sim.schedule(
            400e-6, lambda: setattr(nic, "control_handler", saved))
        testbed.sim.run()
        assert outcome["ok"]
        assert ctl.resends == 1
        assert group.registered

    def test_retries_exhausted_still_fails(self, testbed):
        testbed.topo.nic(3).control_handler = None
        group, ctl, outcome = _start_registration(
            testbed, timeout=300e-6, retries=2)
        testbed.sim.run()
        assert not outcome["ok"]
        assert ctl.resends == 2
        assert "timeout" in outcome["reason"]


class TestSwitchError:
    def test_mft_capacity_error_names_the_switch(self):
        cl = Cluster.testbed(4, accel_config=AcceleratorConfig(max_groups=0))
        group, ctl, outcome = _start_registration(cl)
        cl.sim.run()
        assert not outcome["ok"]
        assert "sw0" in outcome["reason"]
        assert not group.registered

    def test_switch_error_fails_fast_no_retry_storm(self):
        """A hard switch rejection must not burn the retry budget — the
        error is deterministic, not a lost packet."""
        cl = Cluster.testbed(4, accel_config=AcceleratorConfig(max_groups=0))
        group, ctl, outcome = _start_registration(cl, retries=3)
        cl.sim.run()
        assert not outcome["ok"]
        assert ctl.resends == 0

    def test_register_sync_raises_on_switch_error(self):
        cl = Cluster.testbed(4, accel_config=AcceleratorConfig(max_groups=0))
        fabric = cl.fabric
        qps = {ip: cl.ctx(ip).create_qp() for ip in cl.host_ips}
        group = fabric.create_group(qps, leader_ip=cl.host_ips[0])
        with pytest.raises(RegistrationError):
            fabric.register_sync(group)
