#!/usr/bin/env python3
"""A pub/sub broker with multicast fan-out (§I motivation).

A Kafka-style broker delivers each published message to every
subscriber of a topic.  With unicast connections the broker's NIC
pushes one copy per subscriber — fan-out eats broker egress linearly.
With a Cepheus group per topic the broker sends each byte once and the
fabric replicates.

Run:  python examples/pubsub_broker.py
"""

from repro.apps import Broker, Cluster
from repro.harness.report import fmt_size


def main() -> None:
    fanout = 7
    print(f"Broker with a {fanout}-subscriber topic, per-message "
          f"fan-out metrics\n")
    print(f"{'transport':<10} {'msg size':<9} {'latency':>10} "
          f"{'broker egress':>14} {'efficiency':>11} {'msgs/s':>10}")
    for transport in ("unicast", "cepheus"):
        for size in (64 << 10, 1 << 20):
            cluster = Cluster.testbed(8)
            broker = Broker(cluster, host_ip=1, transport=transport)
            broker.create_topic("events", list(range(2, 2 + fanout)))
            r = broker.publish("events", size)
            rate = broker.sustained_publish_rate("events", size,
                                                 n_messages=100)
            print(f"{transport:<10} {fmt_size(size):<9} "
                  f"{r.latency * 1e6:>8.1f}us "
                  f"{r.broker_tx_bytes / 1e6:>11.2f}MB "
                  f"{r.fanout_efficiency():>10.2f} "
                  f"{rate:>9.0f}")
    print("\nefficiency = payload bytes / broker egress bytes "
          "(1.0 = each byte sent once)")


if __name__ == "__main__":
    main()
