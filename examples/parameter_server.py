#!/usr/bin/env python3
"""Parameter-Server gradient distribution with Cepheus (§I motivation +
§VIII future-work extension).

One data-parallel training step moves a gradient/update vector twice:

  1. workers  --(reduce)-->  parameter server   (many-to-one)
  2. PS       --(bcast) -->  workers            (one-to-many)

Phase 2 is a multicast, and the paper's introduction names it as a
Cepheus target ("multicast can accelerate the parameter distribution
process in distributed DNN training architectures, such as Parameter
Server").  This example times one full step for several model-update
sizes under three strategies plus classic ring allreduce.

Run:  python examples/parameter_server.py
"""

from repro.apps import Cluster
from repro.collectives import AllReduce
from repro.harness.report import fmt_size

STRATEGIES = ("ps-cepheus", "ps-binomial", "ps-multi-unicast", "ring")


def main() -> None:
    n_nodes = 8
    print(f"One training step ({n_nodes} nodes): reduce gradients to the "
          f"PS, distribute the update\n")
    header = f"{'update size':<12}" + "".join(f"{s:>19}" for s in STRATEGIES)
    print(header)
    for size in (4 << 20, 64 << 20, 256 << 20):
        cells = []
        for strategy in STRATEGIES:
            cluster = Cluster.testbed(n_nodes)
            result = AllReduce(cluster, cluster.host_ips, strategy).run(size)
            cells.append(f"{result.total * 1e3:>13.2f} ms")
        print(f"{fmt_size(size):<12}" + " ".join(f"{c:>18}" for c in cells))

    print("\nBreakdown at 64MB (reduce vs distribute):")
    for strategy in STRATEGIES:
        cluster = Cluster.testbed(n_nodes)
        r = AllReduce(cluster, cluster.host_ips, strategy).run(64 << 20)
        print(f"  {strategy:<18} reduce {r.reduce_time * 1e3:7.2f} ms   "
              f"distribute {r.distribute_time * 1e3:7.2f} ms   "
              f"busbw {r.busbw_gbps():5.1f} Gbps")
    print("\nWith Cepheus the distribution half collapses to one "
          "wire-time — the PS pattern becomes competitive with ring "
          "allreduce while keeping the PS's simplicity.")


if __name__ == "__main__":
    main()
