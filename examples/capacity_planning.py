#!/usr/bin/env python3
"""Capacity planning with the analytic models (§II-C quantified).

Operators deploying AMcast must pick an overlay per message size: BT
for short messages, Chain for long ones (the §II-C trade-off).  This
example uses the validated closed-form models to (a) locate the
BT/Chain crossover across group sizes, (b) show Cepheus' speedup over
the *best* AMcast choice at every operating point, and (c) cross-check
one point against the packet-level engine.

Run:  python examples/capacity_planning.py
"""

from repro.analytic import (NetModel, binomial_jct, bt_chain_crossover,
                            cepheus_jct, chain_jct)
from repro.harness.report import fmt_size

NET = NetModel(hops=5)  # 3-layer fat-tree path


def crossover_table() -> None:
    print("Where does Chain (slices = #hosts) overtake BT?\n")
    print(f"{'group size':>10} {'crossover message size':>24}")
    for n in (4, 16, 64, 256, 512):
        x = bt_chain_crossover(n, NET)
        print(f"{n:>10} {fmt_size(x):>24}")
    print("\nBelow the crossover BT wins (log-depth latency); above it the "
          "pipelined Chain wins.\nCepheus does not care: one wire-time at "
          "every size.\n")


def best_amcast_vs_cepheus() -> None:
    print("Cepheus speedup over the BEST AMcast choice (512 members):\n")
    print(f"{'size':>7} {'best AMcast':>12} {'amcast JCT':>12} "
          f"{'cepheus JCT':>12} {'speedup':>8}")
    n = 512
    for size in (64, 64 << 10, 1 << 20, 64 << 20, 1 << 30):
        bt = binomial_jct(size, n, NET)
        ch = chain_jct(size, n, NET, slices=n)
        best_name, best = ("BT", bt) if bt <= ch else ("Chain", ch)
        ceph = cepheus_jct(size, n, NET, mdt_depth=5)
        print(f"{fmt_size(size):>7} {best_name:>12} {best * 1e3:>10.3f}ms "
              f"{ceph * 1e3:>10.3f}ms {best / ceph:>7.1f}x")


def cross_check() -> None:
    from repro.apps import Cluster
    from repro.collectives import BinomialTreeBcast, CepheusBcast

    print("\nCross-check (packet-level, 16 members on a k=4 fat-tree, 1MB):")
    cl = Cluster.fat_tree_cluster(4)
    sim_ceph = CepheusBcast(cl, cl.host_ips).run(1 << 20).jct
    sim_bt = BinomialTreeBcast(cl, cl.host_ips).run(1 << 20).jct
    mod_ceph = cepheus_jct(1 << 20, 16, NET, mdt_depth=3)
    mod_bt = binomial_jct(1 << 20, 16, NetModel(hops=3))
    print(f"  cepheus: model {mod_ceph * 1e6:7.1f}us vs engine "
          f"{sim_ceph * 1e6:7.1f}us")
    print(f"  bt     : model {mod_bt * 1e6:7.1f}us vs engine "
          f"{sim_bt * 1e6:7.1f}us")


def main() -> None:
    crossover_table()
    best_amcast_vs_cepheus()
    cross_check()


if __name__ == "__main__":
    main()
