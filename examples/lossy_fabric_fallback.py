#!/usr/bin/env python3
"""Loss tolerance and the safeguard fallback (§V-C, §V-D).

Part 1 sweeps random loss rates at the middle switches of a fat-tree
and shows Cepheus' goodput degrading with loss (go-back-N retransmits
serve *all* receivers — the paper's argument for PFC-lossless
deployment).

Part 2 demonstrates both §V-D fallback triggers:
  * MFT registration failure (switch memory exhausted), and
  * a mid-flight goodput collapse (the group's switch state vanishes),
after which the broadcast transparently re-runs over Chain.

Run:  python examples/lossy_fabric_fallback.py
"""

from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.core.accelerator import AcceleratorConfig
from repro.net.trace import collect_run_stats


def loss_sweep() -> None:
    size = 8 << 20
    print("16-member multicast of 8MB on a k=4 fat-tree, loss injected "
          "at agg/core switches\n")
    print(f"{'loss rate':>9} {'FCT':>10} {'goodput':>12} {'drops':>6} "
          f"{'retransmits':>12}")
    for rate in (0.0, 1e-5, 1e-4, 1e-3):
        cluster = Cluster.fat_tree_cluster(4)
        cluster.topo.set_loss_rate(rate, layers=("agg", "core"))
        algo = CepheusBcast(cluster, cluster.host_ips)
        result = algo.run(size)
        stats = collect_run_stats(cluster.topo)
        qp = algo.qps[algo.root]
        print(f"{rate:>9.0e} {result.jct * 1e3:>8.3f}ms "
              f"{result.goodput_gbps():>9.1f}Gbps {stats.random_drops:>6} "
              f"{qp.retransmitted_packets:>12}")


def fallback_demo() -> None:
    print("\n--- safeguard fallback ---\n")

    # Trigger 1: the switch has no MFT memory left.
    cluster = Cluster.testbed(4, accel_config=AcceleratorConfig(max_groups=0))
    algo = CepheusBcast(cluster, cluster.host_ips)
    result = algo.run(4 << 20)
    print(f"registration failure -> fell back: {algo.fell_back}")
    print(f"  reason    : {algo.fallback_reason}")
    print(f"  algorithm : {result.algorithm}, all receivers done: "
          f"{sorted(result.recv_times)}")

    # Trigger 2: goodput collapses mid-flight.
    cluster = Cluster.testbed(4)
    algo = CepheusBcast(cluster, cluster.host_ips, safeguard=True,
                        expected_bps=90e9)
    algo.prepare()
    cluster.sim.schedule(
        50e-6,
        lambda: cluster.fabric.accelerators["sw0"].table.remove(
            algo.group.mcst_id))
    result = algo.run(32 << 20)
    print(f"\nmid-flight collapse  -> fell back: {algo.fell_back}")
    print(f"  reason    : {algo.fallback_reason}")
    print(f"  algorithm : {result.algorithm}, all receivers done: "
          f"{sorted(result.recv_times)}")


def partial_recovery_demo() -> None:
    """The paper's envisioned fine-grained fallback: one member's rack
    link dies mid-flight; instead of abandoning the in-network path,
    probe membership and re-form the group around the survivors."""
    from repro.net import FailureInjector

    print("\n--- fine-grained (partial) recovery ---\n")
    cluster = Cluster.fat_tree_cluster(4)
    injector = FailureInjector(cluster.topo)
    algo = CepheusBcast(cluster, [1, 2, 3, 5], safeguard=True,
                        expected_bps=90e9, recovery="partial")
    algo.prepare()
    injector.fail_host_link(5, at=100e-6)
    result = algo.run(32 << 20)
    print(f"host 5's access link died mid-flight -> "
          f"fell back: {algo.fell_back}")
    print(f"  reason      : {algo.fallback_reason}")
    print(f"  unreachable : {sorted(algo.unreachable)}")
    print(f"  algorithm   : {result.algorithm}; survivors served "
          f"in-network: {sorted(result.recv_times)}")


def main() -> None:
    loss_sweep()
    fallback_demo()
    partial_recovery_demo()


if __name__ == "__main__":
    main()
