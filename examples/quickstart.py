#!/usr/bin/env python3
"""Quickstart: one Cepheus multicast vs the AMcast baselines.

Builds the paper's 4-server testbed (one switch, 100 G links, a Cepheus
accelerator on the switch), registers a multicast group, broadcasts a
16 MB message, and compares the JCT against Binomial Tree, Chain and
plain multi-unicast.

Run:  python examples/quickstart.py
"""

from repro.apps import Cluster
from repro.collectives import (BinomialTreeBcast, CepheusBcast, ChainBcast,
                               MultiUnicastBcast)
from repro.harness.report import fmt_size, fmt_time


def main() -> None:
    size = 16 << 20  # 16 MB

    # One cluster per scheme keeps the comparisons independent.
    print(f"Broadcast of {fmt_size(size)} from 1 sender to 3 receivers "
          f"(100G testbed)\n")
    print(f"{'scheme':<16} {'JCT':>10} {'goodput':>12} {'vs cepheus':>11}")
    baseline = None
    for cls, kwargs in (
        (CepheusBcast, {}),
        (ChainBcast, {"slices": 4}),
        (BinomialTreeBcast, {}),
        (MultiUnicastBcast, {}),
    ):
        cluster = Cluster.testbed(4)
        algo = cls(cluster, cluster.host_ips, **kwargs)
        result = algo.run(size)
        if baseline is None:
            baseline = result.jct
        print(f"{algo.name:<16} {fmt_time(result.jct):>10} "
              f"{result.goodput_gbps():>9.1f}Gbps "
              f"{result.jct / baseline:>10.2f}x")

    # Peek inside: what did the fabric actually do?
    cluster = Cluster.testbed(4)
    algo = CepheusBcast(cluster, cluster.host_ips)
    algo.run(size)
    accel = cluster.fabric.accelerators["sw0"]
    sender = algo.qps[algo.root]
    print("\nInside the accelerated run:")
    print(f"  data packets entering the switch : {accel.data_in}")
    print(f"  replicas leaving (3 receivers)   : {accel.replicas_out}")
    print(f"  ACKs the sender actually received: {sender.acks_received} "
          f"(aggregated from "
          f"{sum(algo.qps[ip].acks_sent for ip in cluster.host_ips[1:])} "
          f"receiver ACKs)")
    print(f"  MFT memory on the switch         : {accel.memory_bytes()} B")


if __name__ == "__main__":
    main()
