#!/usr/bin/env python3
"""HPL with Cepheus-accelerated Panel Broadcast (§V-B2).

Runs the HPL phase model on a 1x4 process grid twice — once with HPL's
default ``increasing-ring`` panel broadcast and once with Cepheus — and
prints the Fig. 11-style JCT breakdown.  The panel source rotates every
iteration, so the Cepheus run also demonstrates §III-E multicast source
switching: one registered MFT serves all 31 epochs.

Run:  python examples/hpl_panel_broadcast.py
"""

from repro.apps import Cluster, HplConfig, HplModel


def run(pb_algorithm: str):
    cluster = Cluster.testbed(4)
    model = HplModel(
        cluster, grid=[[1, 2, 3, 4]],
        config=HplConfig(n=4096, nb=256),
        pb_algorithm=pb_algorithm,
    )
    return cluster, model.run()


def main() -> None:
    print("HPL, N=4096, NB=256, 1x4 grid (Panel Broadcast along the row)\n")
    rows = {}
    for alg in ("increasing-ring", "cepheus"):
        cluster, r = run(alg)
        rows[alg] = r
        print(f"PB = {alg}")
        print(f"  iterations      : {r.iterations}")
        print(f"  panel fact.     : {r.pf_time * 1e3:8.1f} ms")
        print(f"  panel broadcast : {r.pb_comm * 1e3:8.1f} ms")
        print(f"  update (DGEMM)  : {r.update_time * 1e3:8.1f} ms")
        print(f"  total JCT       : {r.total * 1e3:8.1f} ms")
        if alg == "cepheus":
            groups = len(cluster.fabric.groups)
            print(f"  multicast groups registered over {r.iterations} "
                  f"source rotations: {groups}")
        print()
    base, ceph = rows["increasing-ring"], rows["cepheus"]
    print(f"Cepheus cuts PB communication by "
          f"{1 - ceph.pb_comm / base.pb_comm:.0%} "
          f"and end-to-end JCT by {1 - ceph.total / base.total:.0%} "
          f"(paper: 67% / 12%)")


if __name__ == "__main__":
    main()
