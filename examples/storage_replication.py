#!/usr/bin/env python3
"""Distributed-storage replication with multicast WRITE (§V-B1).

A client writes three replicas to three storage servers.  Compares:

* 1-unicast   — write a single copy (the ideal reference);
* 3-unicasts  — the default replication: three independent RDMA WRITEs;
* cepheus     — one multicast WRITE; leaf switches rewrite the RETH
                (remote address + rkey) per receiver so each server's
                RNIC lands the data in its own memory region.

Reproduces the shape of Table I (sustained 8 KB IOPS) and Fig. 10
(single-IO latency vs IO size).

Run:  python examples/storage_replication.py
"""

from repro.apps import Cluster, ReplicatedStore
from repro.harness.report import fmt_size


def build(scheme: str) -> ReplicatedStore:
    cluster = Cluster.testbed(4)
    servers = [2] if scheme == "unicast" else [2, 3, 4]
    return ReplicatedStore(cluster, client_ip=1, server_ips=servers,
                           scheme=scheme)


def main() -> None:
    print("Sustained 8KB replication writing (queue depth 32)\n")
    print(f"{'scheme':<14} {'IOPS':>9} {'goodput':>12}")
    for scheme, label in (("unicast", "1-unicast"),
                          ("multi-unicast", "3-unicasts"),
                          ("cepheus", "cepheus")):
        r = build(scheme).run_iops(io_size=8192, n_ios=10000)
        print(f"{label:<14} {r.iops / 1e6:>8.3f}M {r.goodput_gbps:>9.1f}Gbps")

    print("\nSingle IO latency (three replicas, queue depth 1)\n")
    print(f"{'IO size':<9} {'1-unicast':>11} {'3-unicasts':>11} "
          f"{'cepheus':>10} {'saving':>8}")
    for size in (8 << 10, 64 << 10, 512 << 10):
        lat = {}
        for scheme in ("unicast", "multi-unicast", "cepheus"):
            lat[scheme] = build(scheme).run_latency(size, samples=4)
        saving = 1 - lat["cepheus"] / lat["multi-unicast"]
        print(f"{fmt_size(size):<9} {lat['unicast'] * 1e6:>9.1f}us "
              f"{lat['multi-unicast'] * 1e6:>9.1f}us "
              f"{lat['cepheus'] * 1e6:>8.1f}us {saving:>7.0%}")

    # Show that the multicast WRITE really landed in three different
    # memory regions via per-receiver RETH rewriting.
    store = build("cepheus")
    store.run_iops(io_size=8192, n_ios=100)
    print("\nPer-server MR hit counts after 100 multicast WRITEs:")
    for ip in (2, 3, 4):
        table = store.cluster.ctx(ip).mr_table
        print(f"  server {ip}: {table.write_hits} hits, "
              f"{table.write_misses} misses")


if __name__ == "__main__":
    main()
