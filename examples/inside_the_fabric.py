#!/usr/bin/env python3
"""Telemetry deep-dive: watching the fabric during a congested multicast.

Runs a Cepheus multicast while a background unicast flow congests one
receiver's downlink, and uses the telemetry toolkit to show what the
fabric is doing:

* per-packet one-way delay distribution at the congested vs a clean
  receiver (DeliveryTap);
* the bottleneck queue's depth over time (QueueDepthProbe) — DCQCN
  holds it near the ECN marking band;
* the switch's forwarding log around one multicast packet (PacketLog),
  i.e. the replication fan-out made visible.

Run:  python examples/inside_the_fabric.py
"""

from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.net.telemetry import DeliveryTap, PacketLog, QueueDepthProbe


def main() -> None:
    cluster = Cluster.testbed(8)
    algo = CepheusBcast(cluster, [1, 2, 3, 4])
    algo.prepare()

    # Taps on a congested receiver (2) and a clean one (3).
    tap_hot = DeliveryTap(algo.qps[2])
    tap_cold = DeliveryTap(algo.qps[3])
    sw = cluster.topo.switches[0]
    probe = QueueDepthProbe(cluster.sim, sw.ports[1],  # egress toward host 2
                            interval=20e-6, duration=6e-3)

    # Background congestion: host 8 blasts host 2.
    cluster.qp_to(8, 2).post_send(48 << 20)
    result = algo.run(32 << 20)
    probe.stop()

    print(f"multicast of 32MB to 3 receivers, one congested: "
          f"JCT {result.jct * 1e3:.2f} ms "
          f"({result.goodput_gbps():.1f} Gbps — paced by the hot receiver)\n")

    for label, tap in (("congested receiver", tap_hot),
                       ("clean receiver   ", tap_cold)):
        s = tap.stats.summary()
        print(f"{label}: {s['count']} packets, one-way delay "
              f"mean {s['mean'] * 1e6:6.1f}us  p50 {s['p50'] * 1e6:6.1f}us  "
              f"p99 {s['p99'] * 1e6:6.1f}us  max {s['max'] * 1e6:6.1f}us")

    peak = probe.peak_bytes
    mean = probe.mean_bytes()
    print(f"\nbottleneck queue (switch egress to host 2): "
          f"mean {mean / 1e3:.0f} KB, peak {peak / 1e3:.0f} KB "
          f"(ECN marking band starts at 100 KB)")
    marks = sw.ports[1].stats.ecn_marks
    cnps = algo.qps[algo.root].cc.cnp_count
    print(f"ECN marks at that port: {marks}; CNPs that survived the "
          f"in-network filter to the sender: {cnps}")

    # Show one packet's replication using the forwarding log.
    log = PacketLog(sw)
    algo.qps[algo.root].post_send(100)
    cluster.run()
    fanout = log.of_type("DATA")
    print(f"\nforwarding log for one 100B multicast packet: "
          f"{len(fanout)} replicas out of ports "
          f"{sorted(e[4] for e in fanout)} (one packet in, one tree out)")


if __name__ == "__main__":
    main()
